"""Tests for repro.noc.statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.noc.flit import make_packet
from repro.noc.network import Network, NoCConfig
from repro.noc.routing import Port
from repro.noc.statistics import link_loads, render_heatmap, router_heatmap


def run_simple_network() -> Network:
    net = Network(NoCConfig(width=4, height=4, link_width=64))
    for src in range(8):
        net.send_packet(make_packet(src, 15, [src * 37, src], 64))
    net.run_until_drained()
    return net


class TestLinkLoads:
    def test_totals_match_ledger(self):
        net = run_simple_network()
        loads = link_loads(net)
        assert sum(l.transitions for l in loads) == (
            net.stats.total_bit_transitions
        )
        assert sum(l.flits for l in loads) == net.stats.flit_hops

    def test_sorted_by_transitions(self):
        net = run_simple_network()
        loads = link_loads(net)
        values = [l.transitions for l in loads]
        assert values == sorted(values, reverse=True)

    def test_fields_parsed(self):
        net = run_simple_network()
        for load in link_loads(net):
            assert 0 <= load.router < 16
            assert isinstance(load.port, Port)
            assert load.name == f"R{load.router}.{load.port.name}"

    def test_transitions_per_flit(self):
        net = run_simple_network()
        for load in link_loads(net):
            if load.flits:
                assert load.transitions_per_flit == (
                    load.transitions / load.flits
                )

    def test_excludes_injection_recorders(self):
        net = Network(
            NoCConfig(width=2, height=2, link_width=64, record_injection=True)
        )
        net.send_packet(make_packet(0, 3, [1, 2], 64))
        net.run_until_drained()
        names = {l.name for l in link_loads(net)}
        assert all(n.startswith("R") for n in names)


class TestHeatmap:
    def test_grid_shape(self):
        net = run_simple_network()
        grid = router_heatmap(net)
        assert grid.shape == (4, 4)

    def test_destination_column_busy(self):
        # All traffic heads to node 15; routers on the last column/row
        # carry it, node 15 ejects it.
        net = run_simple_network()
        grid = router_heatmap(net, metric="flits")
        assert grid[3, 3] > 0

    def test_totals_conserved(self):
        net = run_simple_network()
        grid = router_heatmap(net, metric="transitions")
        assert int(grid.sum()) == net.stats.total_bit_transitions

    def test_bad_metric(self):
        net = run_simple_network()
        with pytest.raises(ValueError):
            router_heatmap(net, metric="latency")

    def test_render(self):
        grid = np.array([[10, 0], [5, 10]])
        text = render_heatmap(grid, "demo")
        assert "demo" in text
        assert "10" in text


class TestHeatmapAlignment:
    def test_zero_and_small_cells_fixed_width(self):
        # Regression: zero cells once rendered as a bare "-" while
        # nonzero cells rendered value-proportional hash runs, so bar
        # columns drifted out of alignment row to row.
        grid = np.array([[100, 0, 1], [0, 50, 100]])
        text = render_heatmap(grid, "align")
        bar_rows = [
            line.split("| ", 1)[1]
            for line in text.splitlines()
            if "|" in line
        ]
        assert len(bar_rows) == 2
        for row in bar_rows:
            padded = row.ljust(3 * 9 + 2)
            # Each bar cell occupies exactly _BAR_WIDTH columns.
            cells = [padded[i * 10 : i * 10 + 9] for i in range(3)]
            for cell in cells:
                assert cell.strip("#- ") == ""
        # A tiny nonzero cell still gets at least one hash, a zero
        # cell renders as "-".
        assert bar_rows[0].split()[2].startswith("#")
        assert bar_rows[0].split()[1] == "-"
