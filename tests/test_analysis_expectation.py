"""Tests for repro.analysis.expectation (Eq. 1-4, Fig. 1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.expectation import (
    expectation_surface,
    expected_flit_transitions,
    expected_transitions,
    monte_carlo_expected_transitions,
    pair_product_objective,
    random_word_with_popcount,
    transition_probability,
)

count32 = st.integers(min_value=0, max_value=32)


class TestTransitionProbability:
    def test_both_zero(self):
        assert transition_probability(0, 0) == 0.0

    def test_both_full(self):
        assert transition_probability(32, 32) == 0.0

    def test_opposite_extremes(self):
        assert transition_probability(32, 0) == pytest.approx(1.0)

    def test_paper_equation_form(self):
        # Eq. (1): 1 - (32-x)(32-y)/1024 - xy/1024
        for x, y in [(10, 20), (5, 5), (16, 16)]:
            expected = 1 - (32 - x) * (32 - y) / 1024 - x * y / 1024
            assert transition_probability(x, y) == pytest.approx(expected)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            transition_probability(33, 0)

    @given(count32, count32)
    def test_is_probability(self, x, y):
        p = transition_probability(x, y)
        assert 0.0 <= p <= 1.0


class TestExpectedTransitions:
    def test_paper_equation_two(self):
        # Eq. (2): E = x + y - xy/16 for W=32.
        for x, y in [(8, 24), (32, 32), (0, 17)]:
            assert expected_transitions(x, y) == pytest.approx(
                x + y - x * y / 16
            )

    @given(count32, count32)
    def test_symmetry(self, x, y):
        assert expected_transitions(x, y) == pytest.approx(
            expected_transitions(y, x)
        )

    @given(st.integers(min_value=2, max_value=31))
    def test_equal_counts_minimise_given_sum(self, x):
        # For fixed x + y, E decreases in the product xy, so the
        # balanced split always has the smaller expectation.
        e_balanced = expected_transitions(x, x)
        e_spread = expected_transitions(x - 1, x + 1)
        assert e_balanced <= e_spread + 1e-12


class TestExpectationSurface:
    def test_shape(self):
        assert expectation_surface(32).shape == (33, 33)

    def test_corners(self):
        surf = expectation_surface(32)
        assert surf[0, 0] == 0.0
        assert surf[32, 32] == 0.0
        assert surf[0, 32] == 32.0
        assert surf[32, 0] == 32.0

    def test_matches_scalar(self):
        surf = expectation_surface(32)
        for x in (3, 17, 29):
            for y in (0, 11, 32):
                assert surf[x, y] == pytest.approx(expected_transitions(x, y))

    def test_maximum_location(self):
        # E = x + y - xy/16 peaks at opposite extremes.
        surf = expectation_surface(32)
        assert surf.max() == pytest.approx(32.0)


class TestFlitExpectation:
    def test_equation_three(self):
        xs = np.array([4, 8, 12])
        ys = np.array([2, 6, 10])
        expected = xs.sum() + ys.sum() - (xs * ys).sum() / 16
        assert expected_flit_transitions(xs, ys) == pytest.approx(expected)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            expected_flit_transitions(np.array([1]), np.array([1, 2]))

    def test_pair_product(self):
        assert pair_product_objective([1, 2], [3, 4]) == 11

    def test_maximising_f_minimises_e(self, rng):
        xs = rng.integers(0, 33, size=8)
        ys = rng.integers(0, 33, size=8)
        ys_sorted = np.sort(ys)[::-1][np.argsort(np.argsort(-xs))]
        # Aligning sorted orders maximises F, hence minimises E.
        assert expected_flit_transitions(
            xs, ys_sorted
        ) <= expected_flit_transitions(xs, ys) + 1e-9


class TestMonteCarlo:
    def test_random_word_has_exact_popcount(self, rng):
        for count in (0, 1, 16, 32):
            word = random_word_with_popcount(count, 32, rng)
            assert bin(word).count("1") == count

    def test_word_fits_width(self, rng):
        word = random_word_with_popcount(8, 16, rng)
        assert word < 2**16

    @settings(deadline=None, max_examples=10)
    @given(
        st.integers(min_value=0, max_value=32),
        st.integers(min_value=0, max_value=32),
    )
    def test_monte_carlo_matches_closed_form(self, x, y):
        rng = np.random.default_rng(x * 33 + y)
        empirical = monte_carlo_expected_transitions(
            x, y, trials=1500, rng=rng
        )
        analytic = expected_transitions(x, y)
        # Empirical std of the mean is at most ~sqrt(32)/sqrt(1500).
        assert abs(empirical - analytic) < 0.6
