"""Tests for repro.serving (multi-tenant fleets and tail latency)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.network import NoCConfig, percentile
from repro.noc.traffic import poisson_arrivals
from repro.serving import (
    ServingConfig,
    TenantSpec,
    parse_tenant_mix,
    run_serving,
)

latency_lists = st.lists(
    st.one_of(
        st.integers(min_value=0, max_value=10**6),
        st.floats(
            min_value=0.0,
            max_value=1e6,
            allow_nan=False,
            allow_infinity=False,
        ),
    ),
    min_size=1,
    max_size=60,
)


class TestPercentile:
    @given(latency_lists, st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=200)
    def test_matches_numpy(self, values, p):
        """The pure-python helper is np.percentile (linear method)."""
        ours = percentile(values, p)
        ref = float(np.percentile(np.asarray(values, dtype=float), p))
        assert ours == pytest.approx(ref, rel=1e-12, abs=1e-9)

    @given(latency_lists)
    def test_endpoints_are_min_max(self, values):
        assert percentile(values, 0) == min(values)
        assert percentile(values, 100) == max(values)

    def test_empty_and_bounds(self):
        assert percentile([], 99) == 0.0
        with pytest.raises(ValueError):
            percentile([1.0], -1)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestTenantMixGrammar:
    def test_model_and_pattern_tokens(self):
        tenants = parse_tenant_mix("lenet+uniform@0.05")
        assert [t.name for t in tenants] == ["lenet", "uniform"]
        assert tenants[0].workload == "model"
        assert tenants[0].model == "lenet"
        assert tenants[0].ordering is None
        assert tenants[1].workload == "synthetic"
        assert tenants[1].pattern == "uniform"
        assert tenants[1].rate == 0.05

    def test_model_ordering_modifier(self):
        (tenant,) = parse_tenant_mix("lenet@O2")
        assert tenant.ordering == "O2"

    def test_duplicates_get_suffixed_names(self):
        tenants = parse_tenant_mix("lenet+lenet+uniform")
        assert [t.name for t in tenants] == ["lenet", "lenet#2", "uniform"]

    def test_errors(self):
        with pytest.raises(ValueError, match="unknown tenant"):
            parse_tenant_mix("resnet")
        with pytest.raises(ValueError, match="bad ordering"):
            parse_tenant_mix("lenet@O9")
        with pytest.raises(ValueError, match="bad rate"):
            parse_tenant_mix("uniform@fast")
        with pytest.raises(ValueError, match="empty tenant"):
            parse_tenant_mix("lenet++uniform")


class TestConfigs:
    def test_round_trip(self):
        config = ServingConfig(
            tenants=parse_tenant_mix("lenet@O1+hotspot@0.02"),
            partitioning="blocks",
            ordering="O2",
            background_rate=0.03,
            max_outstanding=2,
            batch_window=10,
            seed=9,
        )
        assert ServingConfig.from_dict(config.to_dict()) == config

    def test_tenant_round_trip(self):
        spec = TenantSpec(
            name="bg", rate=0.1, n_requests=7, max_outstanding=3
        )
        assert TenantSpec.from_dict(spec.to_dict()) == spec

    def test_per_tenant_overrides_beat_fleet_defaults(self):
        fleet = ServingConfig(
            tenants=(
                TenantSpec(name="a", rate=0.5, n_requests=9),
                TenantSpec(name="b"),
            ),
            background_rate=0.01,
            n_requests=3,
        )
        a, b = fleet.tenants
        assert fleet.tenant_rate(a) == 0.5
        assert fleet.tenant_requests(a) == 9
        assert fleet.tenant_rate(b) == 0.01
        assert fleet.tenant_requests(b) == 3

    def test_validation(self):
        with pytest.raises(ValueError, match="duplicate"):
            ServingConfig(
                tenants=(TenantSpec(name="x"), TenantSpec(name="x"))
            )
        with pytest.raises(ValueError):
            ServingConfig(tenants=())
        with pytest.raises(ValueError):
            ServingConfig(partitioning="diagonal")
        with pytest.raises(ValueError):
            ServingConfig(arrival="trace")  # no gaps recorded
        with pytest.raises(ValueError):
            TenantSpec(name="bad", workload="fpga")


def two_tenant_config(**overrides) -> ServingConfig:
    kwargs = dict(
        tenants=parse_tenant_mix("uniform+hotspot"),
        background_rate=0.05,
        n_requests=6,
        packets_per_request=4,
        flits_per_packet=2,
        seed=11,
    )
    kwargs.update(overrides)
    return ServingConfig(**kwargs)


class TestRunServing:
    def test_tenant_bt_attribution_sums_to_total(self):
        result = run_serving(two_tenant_config())
        assert result.total_bit_transitions > 0
        assert (
            sum(t.bit_transitions for t in result.tenants)
            == result.total_bit_transitions
        )
        assert (
            sum(t.flit_hops for t in result.tenants) == result.flit_hops
        )

    def test_all_requests_complete_without_caps(self):
        result = run_serving(two_tenant_config())
        for tenant in result.tenants:
            assert tenant.requests_arrived == 6
            assert tenant.requests_rejected == 0
            assert tenant.requests_completed == 6
            assert len(tenant.request_latencies) == 6

    def test_cross_core_determinism(self):
        """Arrivals and results are identical on both NoC cores."""
        config = two_tenant_config()
        results = {
            core: run_serving(
                config, NoCConfig(link_width=128, core=core)
            )
            for core in ("event", "stepped")
        }
        event, stepped = results["event"], results["stepped"]
        assert (
            event.total_bit_transitions == stepped.total_bit_transitions
        )
        assert event.per_link == stepped.per_link
        assert event.packet_latencies == stepped.packet_latencies
        assert [t.to_dict() for t in event.tenants] == [
            t.to_dict() for t in stepped.tenants
        ]

    def test_arrivals_deterministic_per_seed(self):
        a = poisson_arrivals(0.05, 20, np.random.default_rng([11, 0, 0]))
        b = poisson_arrivals(0.05, 20, np.random.default_rng([11, 0, 0]))
        assert a == b
        first = run_serving(two_tenant_config())
        second = run_serving(two_tenant_config())
        assert first.total_bit_transitions == second.total_bit_transitions
        assert first.packet_latencies == second.packet_latencies

    def test_admission_cap_rejects(self):
        # One outstanding burst at a time at a high arrival rate: some
        # arrivals must bounce, and the funnel must balance.
        result = run_serving(
            two_tenant_config(background_rate=0.5, max_outstanding=1)
        )
        total_rejected = sum(t.requests_rejected for t in result.tenants)
        assert total_rejected > 0
        for tenant in result.tenants:
            assert (
                tenant.requests_arrived
                == tenant.requests_admitted + tenant.requests_rejected
            )
            assert tenant.requests_completed == tenant.requests_admitted

    def test_batch_window_delays_requests(self):
        plain = run_serving(two_tenant_config())
        batched = run_serving(two_tenant_config(batch_window=64))
        assert batched.metrics["serving.batch_delay_cycles"] > 0
        assert plain.metrics["serving.batch_delay_cycles"] == 0
        # Arrival-to-completion latency absorbs the queueing delay.
        assert max(
            lat
            for t in batched.tenants
            for lat in t.request_latencies
        ) > max(
            lat for t in plain.tenants for lat in t.request_latencies
        )

    def test_partition_policies_both_complete(self):
        for policy in ("interleaved", "blocks"):
            result = run_serving(two_tenant_config(partitioning=policy))
            nodes_a, nodes_b = (t.nodes for t in result.tenants)
            assert set(nodes_a).isdisjoint(nodes_b)
            assert all(
                t.requests_completed == t.requests_arrived
                for t in result.tenants
            )

    def test_serving_metrics_family(self):
        result = run_serving(two_tenant_config())
        assert result.metrics["serving.tenants"] == 2
        assert result.metrics["serving.requests_arrived"] == 12
        assert result.metrics["serving.requests_completed"] == 12
        assert (
            result.metrics["serving.packets_injected"]
            == result.packets_injected
        )

    def test_rejects_injection_recorders(self):
        with pytest.raises(ValueError, match="record_injection"):
            run_serving(
                two_tenant_config(),
                NoCConfig(link_width=128, record_injection=True),
            )
