"""Tests for repro.hardware (Table II and Sec. V-C models)."""

from __future__ import annotations

import pytest

from repro.hardware.linkpower import (
    BANERJEE_ENERGY_PJ,
    PAPER_ENERGY_PJ,
    LinkPowerModel,
)
from repro.hardware.ordering_unit import (
    OrderingUnitDesign,
    RouterDesign,
    TechnologyParams,
)
from repro.hardware.synthesis import format_table2, model_table2, paper_table2


class TestOrderingUnitDesign:
    def test_default_matches_paper_area(self):
        assert OrderingUnitDesign().area_kge() == pytest.approx(12.91, abs=0.01)

    def test_default_matches_paper_power(self):
        assert OrderingUnitDesign().power_mw() == pytest.approx(2.213, abs=0.005)

    def test_area_scales_with_values(self):
        small = OrderingUnitDesign(n_values=8)
        large = OrderingUnitDesign(n_values=32)
        assert large.area_kge() > small.area_kge()

    def test_area_scales_with_word_width(self):
        assert (
            OrderingUnitDesign(word_width=32).area_kge()
            > OrderingUnitDesign(word_width=8).area_kge()
        )

    def test_ordering_cycles(self):
        unit = OrderingUnitDesign(n_values=16, word_width=8)
        # 3 SWAR stages + 16 sort passes.
        assert unit.ordering_cycles() == 19


class TestRouterDesign:
    def test_default_matches_paper_area(self):
        assert RouterDesign().area_kge() == pytest.approx(125.54, abs=0.05)

    def test_default_matches_paper_power(self):
        assert RouterDesign().power_mw() == pytest.approx(16.92, abs=0.02)

    def test_buffers_dominate(self):
        router = RouterDesign()
        assert router.buffer_gates() > router.crossbar_gates()
        assert router.buffer_gates() > router.allocator_gates()

    def test_unit_much_cheaper_than_router(self):
        # The paper's headline overhead claim.
        assert OrderingUnitDesign().area_kge() < RouterDesign().area_kge() / 5
        assert OrderingUnitDesign().power_mw() < RouterDesign().power_mw() / 5


class TestTable2:
    def test_paper_values(self):
        table = paper_table2()
        assert table["ordering_unit"].area_kge == 12.91
        assert table["router"].power_many_mw == 1083.18
        assert table["router"].count == 64

    def test_model_close_to_paper(self):
        paper = paper_table2()
        model = model_table2()
        for key in ("ordering_unit", "router"):
            assert model[key].area_kge == pytest.approx(
                paper[key].area_kge, rel=0.01
            )
            assert model[key].power_one_mw == pytest.approx(
                paper[key].power_one_mw, rel=0.01
            )

    def test_format_renders(self):
        text = format_table2(paper_table2(), model_table2())
        assert "12.910" in text
        assert "Router" in text


class TestLinkPower:
    def test_paper_power_number(self):
        # Sec. V-C: 0.173 pJ * 64 * 112 * 125 MHz = 155.008 mW.
        model = LinkPowerModel()
        assert model.power_mw() == pytest.approx(155.008, abs=0.001)

    def test_banerjee_power_number(self):
        model = LinkPowerModel(energy_per_transition_pj=BANERJEE_ENERGY_PJ)
        assert model.power_mw() == pytest.approx(476.672, abs=0.001)

    def test_reduced_power_numbers(self):
        model = LinkPowerModel()
        assert model.reduced_power_mw(40.85) == pytest.approx(91.687, abs=0.01)
        banerjee = LinkPowerModel(
            energy_per_transition_pj=BANERJEE_ENERGY_PJ
        )
        assert banerjee.reduced_power_mw(40.85) == pytest.approx(
            281.95, abs=0.01
        )

    def test_for_mesh_link_count(self):
        assert LinkPowerModel.for_mesh(8, 8).n_links == 112
        assert LinkPowerModel.for_mesh(4, 4).n_links == 24

    def test_energy_for_transitions(self):
        model = LinkPowerModel()
        assert model.energy_for_transitions(0) == 0.0
        assert model.energy_for_transitions(1000) == pytest.approx(
            1000 * PAPER_ENERGY_PJ * 1e-12
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkPowerModel(energy_per_transition_pj=0.0)
        with pytest.raises(ValueError):
            LinkPowerModel().power_mw(switching_fraction=1.5)
        with pytest.raises(ValueError):
            LinkPowerModel().reduced_power_mw(120.0)
        with pytest.raises(ValueError):
            LinkPowerModel().energy_for_transitions(-1)


class TestTechnologyParams:
    def test_defaults(self):
        tech = TechnologyParams()
        assert tech.frequency_mhz == 125.0
        assert tech.voltage_v == 1.0
