"""Tests for repro.ordering.proofs (the Sec. III-B machine checks)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ordering.optimal import interleaved_assignment
from repro.ordering.proofs import (
    bubble_to_optimal,
    verify_global_optimality,
    verify_pairwise_lemma,
)


class TestPairwiseLemma:
    def test_holds_small(self):
        assert verify_pairwise_lemma(max_count=6)

    def test_holds_wider(self):
        assert verify_pairwise_lemma(max_count=10)


class TestGlobalOptimality:
    def test_two_lanes(self):
        assert verify_global_optimality(n_lanes=2, trials=40)

    def test_four_lanes(self):
        assert verify_global_optimality(n_lanes=4, trials=25)

    def test_five_lanes(self):
        assert verify_global_optimality(n_lanes=5, trials=10)


class TestBubbleConvergence:
    def test_reaches_interleaved_objective(self):
        rng = np.random.default_rng(7)
        for _ in range(30):
            counts = rng.integers(0, 33, size=12).tolist()
            converged = bubble_to_optimal(list(counts))
            optimal = interleaved_assignment(counts).objective
            assert converged == optimal

    def test_already_optimal_fixed_point(self):
        counts = [9, 7, 5, 3]  # flit1=(9,5), flit2=(7,3) after split
        value = bubble_to_optimal(counts)
        assert value == interleaved_assignment(counts).objective

    def test_odd_length_rejected(self):
        with pytest.raises(ValueError):
            bubble_to_optimal([1, 2, 3])
