"""Tests for repro.ordering.encodings (related-work link codings)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bits.transitions import stream_transitions
from repro.ordering.encodings import (
    bus_invert_decode,
    bus_invert_encode,
    delta_decode,
    delta_encode,
    stream_transitions_with_invert_line,
)

payloads16 = st.lists(
    st.integers(min_value=0, max_value=2**16 - 1), min_size=1, max_size=40
)


class TestBusInvert:
    def test_known_inversion(self):
        # After 0x0000, sending 0xFFFF plain would flip 16 wires;
        # bus-invert sends 0x0000 with the invert line asserted.
        stream = bus_invert_encode([0x0000, 0xFFFF], 16)
        assert stream.payloads[1] == 0x0000
        assert stream.invert_flags == (False, True)

    def test_no_inversion_when_cheap(self):
        stream = bus_invert_encode([0x0000, 0x0001], 16)
        assert stream.invert_flags == (False, False)

    @given(payloads16)
    def test_round_trip(self, payloads):
        stream = bus_invert_encode(payloads, 16)
        assert bus_invert_decode(stream) == payloads

    @given(payloads16)
    def test_per_hop_bound(self, payloads):
        # Classic guarantee: at most W/2 payload-wire transitions per
        # flit (the invert line may add one more).
        stream = bus_invert_encode(payloads, 16)
        prev = stream.payloads[0]
        for cur in stream.payloads[1:]:
            assert bin(prev ^ cur).count("1") <= 8
            prev = cur

    @given(payloads16)
    def test_never_worse_than_plain(self, payloads):
        plain = stream_transitions(payloads)
        encoded = bus_invert_encode(payloads, 16)
        coded = stream_transitions_with_invert_line(encoded)
        # Payload savings always cover the invert-line cost: the line
        # flips only when the inversion saved at least one transition
        # net of the comparison margin.
        assert coded <= plain + len(payloads)

    def test_oversized_payload(self):
        with pytest.raises(ValueError):
            bus_invert_encode([1 << 16], 16)

    def test_decode_requires_flags(self):
        stream = delta_encode([1, 2], 16)
        with pytest.raises(ValueError):
            bus_invert_decode(stream)


class TestDelta:
    def test_first_flit_passthrough(self):
        stream = delta_encode([0xAB, 0xAB], 16)
        assert stream.payloads[0] == 0xAB
        assert stream.payloads[1] == 0x00  # identical -> zero difference

    @given(payloads16)
    def test_round_trip(self, payloads):
        stream = delta_encode(payloads, 16)
        assert delta_decode(stream) == payloads

    def test_repeating_stream_goes_quiet(self):
        # Delta coding excels on repetitive streams: after the first
        # flit the wire carries zeros.
        stream = delta_encode([0x1234] * 10, 16)
        assert all(p == 0 for p in stream.payloads[1:])
        assert stream_transitions_with_invert_line(stream) <= 16

    def test_oversized_payload(self):
        with pytest.raises(ValueError):
            delta_encode([1 << 16], 16)


class TestInteraction:
    def test_all_codings_agree_on_constant_stream(self):
        payloads = [0xF0F0] * 5
        plain = stream_transitions(payloads)
        bi = stream_transitions_with_invert_line(
            bus_invert_encode(payloads, 16)
        )
        de = stream_transitions_with_invert_line(delta_encode(payloads, 16))
        assert plain == 0
        assert bi == 0
        # Delta pays once to return to zero after the first flit.
        assert de <= 8
