"""Tests for repro.accelerator.orderer and config."""

from __future__ import annotations

import pytest

from repro.accelerator.config import AcceleratorConfig, link_width_for
from repro.accelerator.flitize import TaskCodec
from repro.accelerator.orderer import OrderingLatencyModel, OrderingUnit
from repro.ordering.strategies import FillOrder, OrderingMethod


class TestLatencyModel:
    def test_popcount_stages_log2(self):
        assert OrderingLatencyModel(32).popcount_cycles() == 5
        assert OrderingLatencyModel(8).popcount_cycles() == 3

    def test_sort_is_linear_passes(self):
        model = OrderingLatencyModel(8)
        assert model.sort_cycles(16) == 16

    def test_baseline_is_free(self):
        model = OrderingLatencyModel(8)
        assert model.task_cycles(25, OrderingMethod.BASELINE) == 0

    def test_separated_doubles_affiliated(self):
        # The paper: the unit serves separated-ordering "with double
        # time consumption".
        model = OrderingLatencyModel(8)
        o1 = model.task_cycles(25, OrderingMethod.AFFILIATED)
        o2 = model.task_cycles(25, OrderingMethod.SEPARATED)
        assert o2 == 2 * o1


class TestOrderingUnit:
    def test_baseline_forces_row_major(self):
        codec = TaskCodec(16, 32)
        unit = OrderingUnit(codec, OrderingMethod.BASELINE)
        assert unit.fill is FillOrder.ROW_MAJOR

    def test_ordered_methods_keep_deal(self):
        codec = TaskCodec(16, 32)
        unit = OrderingUnit(codec, OrderingMethod.AFFILIATED)
        assert unit.fill is FillOrder.COLUMN_MAJOR_DEAL

    def test_latency_disabled_by_default(self):
        codec = TaskCodec(16, 32)
        unit = OrderingUnit(codec, OrderingMethod.SEPARATED)
        _, delay = unit.encode([1] * 5, [2] * 5, 0)
        assert delay == 0

    def test_latency_reported_when_enabled(self):
        codec = TaskCodec(16, 32)
        unit = OrderingUnit(
            codec, OrderingMethod.SEPARATED, model_latency=True
        )
        _, delay = unit.encode([1] * 5, [2] * 5, 0)
        assert delay > 0
        assert unit.total_latency_cycles == delay

    def test_task_counter(self):
        codec = TaskCodec(16, 32)
        unit = OrderingUnit(codec, OrderingMethod.AFFILIATED)
        for _ in range(3):
            unit.encode([1], [2], 0)
        assert unit.tasks_ordered == 3


class TestAcceleratorConfig:
    def test_link_width_for(self):
        assert link_width_for("float32") == 512
        assert link_width_for("fixed8") == 128
        with pytest.raises(ValueError):
            link_width_for("int4")

    def test_derived_widths(self):
        cfg = AcceleratorConfig(data_format="float32")
        assert cfg.word_width == 32
        assert cfg.link_width == 512
        assert cfg.pairs_per_flit == 8
        cfg8 = AcceleratorConfig(data_format="fixed8")
        assert cfg8.link_width == 128

    def test_noc_config_propagation(self):
        cfg = AcceleratorConfig(width=8, height=8, n_mcs=4)
        noc = cfg.noc_config()
        assert noc.width == 8
        assert noc.link_width == cfg.link_width
        assert noc.n_vcs == 4
        assert noc.vc_depth == 4

    def test_label(self):
        cfg = AcceleratorConfig(ordering=OrderingMethod.SEPARATED)
        assert cfg.label() == "4x4 MC2 float32 O2"

    def test_validation(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(n_mcs=0)
        with pytest.raises(ValueError):
            AcceleratorConfig(n_mcs=16, width=4, height=4)
        with pytest.raises(ValueError):
            AcceleratorConfig(values_per_flit=15)
        with pytest.raises(ValueError):
            AcceleratorConfig(data_format="int4")
