"""Tests for repro.noc.recorder (the Fig. 8 BT recording scheme)."""

from __future__ import annotations

import pytest

from repro.noc.recorder import LinkRecorder, TransitionLedger


class TestLinkRecorder:
    def test_first_flit_free(self):
        rec = LinkRecorder("R0.EAST")
        assert rec.record(0xFFFF) == 0
        assert rec.transitions == 0
        assert rec.flits == 1

    def test_second_flit_counts(self):
        rec = LinkRecorder("R0.EAST")
        rec.record(0b1100)
        assert rec.record(0b1010) == 2
        assert rec.transitions == 2

    def test_flit_pre_register_updates(self):
        rec = LinkRecorder("R0.EAST")
        rec.record(0xFF)
        rec.record(0x00)
        assert rec.previous == 0x00
        assert rec.record(0x00) == 0

    def test_accumulation(self):
        rec = LinkRecorder("x")
        for payload in [0x0, 0xF, 0x0, 0xF]:
            rec.record(payload)
        assert rec.transitions == 12


class TestTransitionLedger:
    def test_lazy_recorder_creation(self):
        ledger = TransitionLedger()
        rec = ledger.recorder_for("R3.WEST")
        assert rec is ledger.recorder_for("R3.WEST")
        assert rec.name == "R3.WEST"

    def test_total_sums_all_links(self):
        ledger = TransitionLedger()
        a = ledger.recorder_for("a")
        b = ledger.recorder_for("b")
        a.record(0x0)
        a.record(0x3)
        b.record(0x0)
        b.record(0x1)
        assert ledger.total_transitions == 3
        assert ledger.total_flit_traversals == 4

    def test_per_link_snapshot(self):
        ledger = TransitionLedger()
        ledger.recorder_for("a").record(0)
        ledger.recorder_for("a").record(7)
        assert ledger.per_link() == {"a": 3}


class TestRunningTotals:
    """Ledger totals are running counters, not full-dict sums."""

    def test_totals_track_incrementally(self):
        ledger = TransitionLedger()
        rec = ledger.recorder_for("a")
        rec.record(0x0)
        assert ledger.total_transitions == 0
        assert ledger.total_flit_traversals == 1
        rec.record(0x7)
        assert ledger.total_transitions == 3
        assert ledger.total_flit_traversals == 2
        ledger.recorder_for("b").record(0xF)
        assert ledger.total_transitions == 3
        assert ledger.total_flit_traversals == 3

    def test_totals_equal_per_link_sum(self):
        ledger = TransitionLedger()
        for i, payload in enumerate([0x0, 0x3, 0x5, 0xF, 0x0]):
            ledger.recorder_for(f"l{i % 2}").record(payload)
        assert ledger.total_transitions == sum(
            ledger.per_link().values()
        )

    def test_adopt_folds_existing_history(self):
        rec = LinkRecorder("ext")
        rec.record(0x0)
        rec.record(0x3)
        ledger = TransitionLedger()
        ledger.adopt(rec)
        assert ledger.total_transitions == 2
        assert ledger.total_flit_traversals == 2
        rec.record(0x1)
        assert ledger.total_transitions == 3

    def test_adopt_rejects_double_ownership(self):
        rec = LinkRecorder("ext")
        a = TransitionLedger()
        a.adopt(rec)
        b = TransitionLedger()
        with pytest.raises(ValueError, match="another ledger"):
            b.adopt(rec)

    def test_construction_with_recorders_adopts(self):
        rec = LinkRecorder("x")
        rec.record(0x0)
        rec.record(0x1)
        ledger = TransitionLedger(recorders={"x": rec})
        assert ledger.total_transitions == 1
        assert ledger.total_flit_traversals == 2
