"""Tests for repro.accelerator.flitize (the Fig. 2 packet layout)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerator.flitize import TaskCodec
from repro.bits.packing import unpack_words
from repro.bits.popcount import popcount
from repro.ordering.strategies import FillOrder, OrderingMethod


def codec32() -> TaskCodec:
    return TaskCodec(values_per_flit=16, word_width=32)


def codec8() -> TaskCodec:
    return TaskCodec(values_per_flit=16, word_width=8)


words32 = st.lists(
    st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=60
)


class TestFlitCount:
    def test_lenet_conv1_task_is_four_flits(self):
        # Fig. 2: 25 inputs + 25 weights + bias -> 4 flits of 8+8.
        assert codec32().data_flit_count(25) == 4

    def test_exact_fill_needs_extra_flit_for_bias(self):
        # 8 pairs fill one flit exactly; the bias forces a second.
        assert codec32().data_flit_count(8) == 2

    def test_seven_pairs_plus_bias_fit_one_flit(self):
        assert codec32().data_flit_count(7) == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            codec32().data_flit_count(0)


class TestEncoding:
    def test_payload_widths(self):
        codec = codec32()
        enc = codec.encode([1] * 25, [2] * 25, 3, OrderingMethod.BASELINE)
        assert len(enc.payloads) == 4
        for p in enc.payloads:
            assert p < (1 << 512)

    def test_baseline_rowmajor_matches_fig2(self):
        # Row-major baseline: flit 0 = inputs 0-7 | weights 0-7 and the
        # last flit holds the remaining pair, the bias and zeros.
        codec = codec32()
        inputs = list(range(100, 125))
        weights = list(range(200, 225))
        enc = codec.encode(
            inputs, weights, 999, OrderingMethod.BASELINE, FillOrder.ROW_MAJOR
        )
        lanes0 = unpack_words(enc.payloads[0], 32, 16)
        assert lanes0[:8] == inputs[:8]
        assert lanes0[8:] == weights[:8]
        lanes3 = unpack_words(enc.payloads[3], 32, 16)
        assert lanes3[0] == inputs[24]
        assert lanes3[8] == weights[24]
        assert lanes3[15] == 999  # bias in the last weight lane
        assert lanes3[1:8] == [0] * 7  # padded zeros

    def test_bias_always_in_last_lane(self):
        codec = codec32()
        for method in OrderingMethod:
            for fill in FillOrder:
                enc = codec.encode([5] * 10, [6] * 10, 777, method, fill)
                last = unpack_words(enc.payloads[-1], 32, 16)
                assert last[15] == 777

    def test_affiliated_weight_half_descending_with_deal(self):
        codec = codec32()
        rng = np.random.default_rng(0)
        weights = [int(w) for w in rng.integers(0, 2**32, size=25)]
        inputs = list(range(25))
        enc = codec.encode(inputs, weights, 0, OrderingMethod.AFFILIATED)
        # Under the column-major deal, reading lane-major across flits
        # recovers the descending-count sequence.
        per_flit = [unpack_words(p, 32, 16) for p in enc.payloads]
        seq = []
        for lane in range(8):
            for flit in per_flit:
                seq.append(flit[8 + lane])
        seq = seq[:-1]  # drop the bias slot
        counts = [popcount(w) for w in seq]
        assert counts == sorted(counts, reverse=True)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            codec32().encode([1], [1, 2], 0, OrderingMethod.BASELINE)


class TestRoundTrip:
    @settings(deadline=None)
    @given(words32, st.integers(min_value=0, max_value=2**32 - 1))
    def test_all_methods_recover_original_pairs(self, weights, bias):
        codec = codec32()
        inputs = list(reversed(weights))
        for method in OrderingMethod:
            enc = codec.encode(inputs, weights, bias, method)
            dec = codec.decode(enc)
            assert dec.bias == bias
            assert dec.original_pairs() == list(zip(inputs, weights))

    @given(words32)
    def test_row_major_round_trip(self, weights):
        codec = codec32()
        inputs = [w ^ 0xFFFF for w in weights]
        for method in OrderingMethod:
            enc = codec.encode(
                inputs, weights, 42, method, FillOrder.ROW_MAJOR
            )
            dec = codec.decode(enc)
            assert dec.original_pairs() == list(zip(inputs, weights))

    def test_fixed8_round_trip(self):
        codec = codec8()
        inputs = [3, 0, 255, 17, 128]
        weights = [255, 1, 0, 90, 45]
        for method in OrderingMethod:
            enc = codec.encode(inputs, weights, 77, method)
            dec = codec.decode(enc)
            assert dec.original_pairs() == list(zip(inputs, weights))
            assert dec.bias == 77


class TestPaddingBehaviour:
    def test_ordered_padding_groups_at_tail_of_sequence(self):
        # After O1 ordering, the padded zero-pairs sit at the end of
        # the transmitted sequence (lowest '1' counts).
        codec = codec32()
        weights = [0xFFFFFFFF] * 5
        inputs = [1] * 5
        enc = codec.encode(inputs, weights, 0, OrderingMethod.AFFILIATED)
        dec = codec.decode(enc)
        # Transmitted weights: 5 real then padding zeros.
        assert all(w == 0xFFFFFFFF for w in dec.weights[:5])
        assert all(w == 0 for w in dec.weights[5:])

    def test_baseline_padding_in_tail_flit(self):
        codec = codec32()
        enc = codec.encode(
            [7] * 9, [9] * 9, 1, OrderingMethod.BASELINE, FillOrder.ROW_MAJOR
        )
        # 9 pairs + bias -> 2 flits; flit 1 holds pair 8, bias, zeros.
        lanes1 = unpack_words(enc.payloads[1], 32, 16)
        assert lanes1[0] == 7
        assert lanes1[8] == 9
        assert lanes1[1:8] == [0] * 7


class TestIndexPayload:
    def test_separated_adds_index_flits(self):
        plain = TaskCodec(16, 32, include_index_payload=False)
        banded = TaskCodec(16, 32, include_index_payload=True)
        weights = list(np.random.default_rng(1).integers(0, 2**32, size=25))
        weights = [int(w) for w in weights]
        inputs = [int(w) for w in
                  np.random.default_rng(2).integers(0, 2**32, size=25)]
        enc_plain = plain.encode(inputs, weights, 0, OrderingMethod.SEPARATED)
        enc_band = banded.encode(inputs, weights, 0, OrderingMethod.SEPARATED)
        assert len(enc_band.payloads) > len(enc_plain.payloads)

    def test_affiliated_needs_no_index_flits(self):
        banded = TaskCodec(16, 32, include_index_payload=True)
        enc = banded.encode([1] * 25, [2] * 25, 0, OrderingMethod.AFFILIATED)
        assert len(enc.payloads) == enc.n_data_flits
