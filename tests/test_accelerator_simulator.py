"""Integration tests: full DNN traffic through the NoC."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.simulator import (
    AcceleratorSimulator,
    aggregate_results,
    run_batch_on_noc,
    run_model_on_noc,
)
from repro.ordering.strategies import OrderingMethod


def tiny_config(**kwargs) -> AcceleratorConfig:
    defaults = dict(
        width=4, height=4, n_mcs=2, max_tasks_per_layer=6, seed=11
    )
    defaults.update(kwargs)
    return AcceleratorConfig(**defaults)


@pytest.fixture(scope="module")
def results(small_lenet, digit_image):
    """One run per (format, ordering) on a tiny workload."""
    out = {}
    for fmt in ("float32", "fixed8"):
        for method in OrderingMethod:
            cfg = tiny_config(data_format=fmt, ordering=method)
            out[(fmt, method)] = run_model_on_noc(
                cfg, small_lenet, digit_image
            )
    return out


class TestFunctionalCorrectness:
    def test_all_tasks_verified(self, results):
        for key, res in results.items():
            assert res.all_verified, f"unverified MACs in {key}"

    def test_task_counts(self, results):
        res = results[("float32", OrderingMethod.BASELINE)]
        assert res.tasks_total == 6 * 5  # 6 tasks x 5 weighted layers

    def test_layer_summaries_complete(self, results):
        res = results[("float32", OrderingMethod.BASELINE)]
        assert [s.layer_name for s in res.layers] == [
            "conv1",
            "conv2",
            "fc1",
            "fc2",
            "fc3",
        ]
        for summary in res.layers:
            assert summary.packets > 0
            assert summary.flits > 0
            assert summary.bit_transitions > 0

    def test_layer_bt_sums_to_total(self, results):
        res = results[("float32", OrderingMethod.BASELINE)]
        assert (
            sum(s.bit_transitions for s in res.layers)
            == res.total_bit_transitions
        )


class TestOrderingEffect:
    @pytest.mark.parametrize("fmt", ["float32", "fixed8"])
    def test_ordering_reduces_bt(self, results, fmt):
        base = results[(fmt, OrderingMethod.BASELINE)].total_bit_transitions
        o1 = results[(fmt, OrderingMethod.AFFILIATED)].total_bit_transitions
        o2 = results[(fmt, OrderingMethod.SEPARATED)].total_bit_transitions
        assert o1 < base
        assert o2 < base

    @pytest.mark.parametrize("fmt", ["float32", "fixed8"])
    def test_separated_beats_affiliated(self, results, fmt):
        o1 = results[(fmt, OrderingMethod.AFFILIATED)].total_bit_transitions
        o2 = results[(fmt, OrderingMethod.SEPARATED)].total_bit_transitions
        assert o2 < o1

    def test_traffic_identical_across_orderings(self, results):
        # Ordering changes bits, not the traffic volume.
        hops = {
            m: results[("float32", m)].flit_hops for m in OrderingMethod
        }
        assert len(set(hops.values())) == 1


class TestConfigurationVariants:
    def test_no_responses_still_verifies(self, small_lenet, digit_image):
        cfg = tiny_config(include_responses=False, max_tasks_per_layer=3)
        res = run_model_on_noc(cfg, small_lenet, digit_image)
        assert res.all_verified

    def test_8x8_mesh(self, small_lenet, digit_image):
        cfg = tiny_config(
            width=8, height=8, n_mcs=4, max_tasks_per_layer=3
        )
        res = run_model_on_noc(cfg, small_lenet, digit_image)
        assert res.all_verified

    def test_unchunked_tasks(self, small_lenet, digit_image):
        cfg = tiny_config(chunk_pairs=None, max_tasks_per_layer=3)
        res = run_model_on_noc(cfg, small_lenet, digit_image)
        assert res.all_verified

    def test_index_payload_adds_flits(self, small_lenet, digit_image):
        base = run_model_on_noc(
            tiny_config(
                ordering=OrderingMethod.SEPARATED, max_tasks_per_layer=3
            ),
            small_lenet,
            digit_image,
        )
        banded = run_model_on_noc(
            tiny_config(
                ordering=OrderingMethod.SEPARATED,
                include_index_payload=True,
                max_tasks_per_layer=3,
            ),
            small_lenet,
            digit_image,
        )
        assert banded.flit_hops > base.flit_hops
        assert banded.all_verified

    def test_ordering_latency_accounting(self, small_lenet, digit_image):
        cfg = tiny_config(
            ordering=OrderingMethod.AFFILIATED,
            max_tasks_per_layer=3,
            extra={"model_ordering_latency": True},
        )
        res = run_model_on_noc(cfg, small_lenet, digit_image)
        assert res.ordering_latency_cycles > 0
        assert res.all_verified

    def test_mc8_configuration(self, small_lenet, digit_image):
        cfg = tiny_config(
            width=8, height=8, n_mcs=8, max_tasks_per_layer=2
        )
        res = run_model_on_noc(cfg, small_lenet, digit_image)
        assert res.all_verified

    def test_pipelined_mode_verifies(self, small_lenet, digit_image):
        cfg = tiny_config(layer_barrier=False, max_tasks_per_layer=3)
        res = run_model_on_noc(cfg, small_lenet, digit_image)
        assert res.all_verified
        assert len(res.layers) == 1
        assert res.layers[0].layer_name == "(pipelined)"

    def test_count_desc_scheduling_verifies(self, small_lenet, digit_image):
        cfg = tiny_config(
            packet_scheduling="count_desc", max_tasks_per_layer=4
        )
        res = run_model_on_noc(cfg, small_lenet, digit_image)
        assert res.all_verified
        # Scheduling reorders packets, never changes traffic volume.
        fifo = run_model_on_noc(
            tiny_config(max_tasks_per_layer=4), small_lenet, digit_image
        )
        assert res.flit_hops == fifo.flit_hops

    def test_invalid_scheduling_rejected(self):
        with pytest.raises(ValueError):
            tiny_config(packet_scheduling="shortest_first")

    def test_pipelining_not_slower(self, small_lenet, digit_image):
        barrier = run_model_on_noc(
            tiny_config(max_tasks_per_layer=4), small_lenet, digit_image
        )
        pipelined = run_model_on_noc(
            tiny_config(layer_barrier=False, max_tasks_per_layer=4),
            small_lenet,
            digit_image,
        )
        assert pipelined.total_cycles <= barrier.total_cycles
        # Same traffic volume either way.
        assert pipelined.flit_hops == barrier.flit_hops


class TestBatchInference:
    def test_batch_runs_verify(self, small_lenet):
        from repro.dnn.datasets import synthetic_digits

        images = synthetic_digits(3, seed=6).images
        cfg = tiny_config(max_tasks_per_layer=3)
        results = run_batch_on_noc(cfg, small_lenet, images)
        assert len(results) == 3
        assert all(r.all_verified for r in results)

    def test_aggregate_totals(self, small_lenet):
        from repro.dnn.datasets import synthetic_digits

        images = synthetic_digits(2, seed=6).images
        cfg = tiny_config(max_tasks_per_layer=3)
        results = run_batch_on_noc(cfg, small_lenet, images)
        agg = aggregate_results(results)
        assert agg["images"] == 2.0
        assert agg["total_bit_transitions"] == float(
            sum(r.total_bit_transitions for r in results)
        )
        assert agg["all_verified"] == 1.0

    def test_batch_shape_validation(self, small_lenet, digit_image):
        cfg = tiny_config()
        with pytest.raises(ValueError):
            run_batch_on_noc(cfg, small_lenet, digit_image)  # 3-D

    def test_aggregate_empty(self):
        with pytest.raises(ValueError):
            aggregate_results([])


class TestSimulatorInternals:
    def test_formats_built_per_layer(self, small_lenet, digit_image):
        sim = AcceleratorSimulator(
            tiny_config(data_format="fixed8"), small_lenet, digit_image
        )
        assert len(sim._formats) == 5
        scales = {
            fmt[1].scale for fmt in sim._formats.values()
        }
        assert len(scales) > 1  # per-layer weight scales differ

    def test_run_result_properties(self, results):
        res = results[("float32", OrderingMethod.BASELINE)]
        assert res.transitions_per_flit_hop > 0
        assert res.mean_packet_latency > 0
        assert res.total_cycles > 0
