"""Tests for repro.accelerator.tasks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator.tasks import extract_tasks, split_task
from repro.dnn.models import LeNet5


class TestExtractTasks:
    def test_layer_names_in_order(self, small_lenet, digit_image):
        layers = extract_tasks(small_lenet, digit_image, max_tasks_per_layer=4)
        assert [lt.layer_name for lt in layers] == [
            "conv1",
            "conv2",
            "fc1",
            "fc2",
            "fc3",
        ]

    def test_total_neuron_counts(self, small_lenet, digit_image):
        layers = extract_tasks(small_lenet, digit_image, max_tasks_per_layer=4)
        totals = {lt.layer_name: lt.total_neurons for lt in layers}
        assert totals["conv1"] == 6 * 28 * 28
        assert totals["conv2"] == 16 * 10 * 10
        assert totals["fc1"] == 120
        assert totals["fc3"] == 10

    def test_sampling_cap(self, small_lenet, digit_image):
        layers = extract_tasks(
            small_lenet, digit_image, max_tasks_per_layer=7
        )
        for lt in layers:
            assert len(lt.tasks) == min(7, lt.total_neurons)

    def test_task_pair_counts(self, small_lenet, digit_image):
        layers = extract_tasks(small_lenet, digit_image, max_tasks_per_layer=3)
        by_name = {lt.layer_name: lt for lt in layers}
        assert by_name["conv1"].tasks[0].n_pairs == 25
        assert by_name["conv2"].tasks[0].n_pairs == 150
        assert by_name["fc1"].tasks[0].n_pairs == 400

    def test_expected_matches_direct_computation(
        self, small_lenet, digit_image
    ):
        layers = extract_tasks(small_lenet, digit_image, max_tasks_per_layer=5)
        for lt in layers:
            for task in lt.tasks:
                direct = float(task.inputs @ task.weights + task.bias)
                assert task.expected == pytest.approx(direct)

    def test_tasks_reconstruct_layer_output(self, small_lenet, digit_image):
        # Full extraction of fc3 must reproduce the model's logits.
        layers = extract_tasks(
            small_lenet, digit_image, max_tasks_per_layer=None
        )
        fc3 = layers[-1]
        small_lenet.eval()
        logits = small_lenet.forward(digit_image[None])[0]
        small_lenet.train()
        outputs = np.zeros(10)
        for task in fc3.tasks:
            outputs[task.neuron_index] = task.expected
        np.testing.assert_allclose(outputs, logits, rtol=1e-10)

    def test_deterministic_sampling(self, small_lenet, digit_image):
        a = extract_tasks(small_lenet, digit_image, 5, seed=3)
        b = extract_tasks(small_lenet, digit_image, 5, seed=3)
        for la, lb in zip(a, b):
            assert [t.neuron_index for t in la.tasks] == [
                t.neuron_index for t in lb.tasks
            ]

    def test_wrong_input_shape(self, small_lenet):
        with pytest.raises(ValueError):
            extract_tasks(small_lenet, np.zeros((3, 64, 64)))

    def test_unique_task_ids(self, small_lenet, digit_image):
        layers = extract_tasks(small_lenet, digit_image, max_tasks_per_layer=6)
        ids = [t.task_id for lt in layers for t in lt.tasks]
        assert len(ids) == len(set(ids))


class TestSplitTask:
    def _task(self, small_lenet, digit_image, layer="fc1"):
        layers = extract_tasks(small_lenet, digit_image, max_tasks_per_layer=2)
        return next(
            lt.tasks[0] for lt in layers if lt.layer_name == layer
        )

    def test_small_task_single_chunk(self, small_lenet, digit_image):
        task = self._task(small_lenet, digit_image, "conv1")
        chunks = split_task(task, 25)
        assert len(chunks) == 1
        assert chunks[0].is_final
        assert chunks[0].bias == task.bias

    def test_fc1_splits_into_16_chunks(self, small_lenet, digit_image):
        task = self._task(small_lenet, digit_image, "fc1")
        chunks = split_task(task, 25)
        assert len(chunks) == 16  # 400 / 25
        assert all(c.n_pairs == 25 for c in chunks)

    def test_bias_only_on_final_chunk(self, small_lenet, digit_image):
        task = self._task(small_lenet, digit_image, "fc1")
        chunks = split_task(task, 25)
        assert all(c.bias == 0.0 for c in chunks[:-1])
        assert chunks[-1].bias == task.bias

    def test_chunks_partition_pairs(self, small_lenet, digit_image):
        task = self._task(small_lenet, digit_image, "conv2")
        chunks = split_task(task, 25)
        rebuilt_inputs = np.concatenate([c.inputs for c in chunks])
        rebuilt_weights = np.concatenate([c.weights for c in chunks])
        np.testing.assert_array_equal(rebuilt_inputs, task.inputs)
        np.testing.assert_array_equal(rebuilt_weights, task.weights)

    def test_partial_sums_reconstruct_expected(
        self, small_lenet, digit_image
    ):
        task = self._task(small_lenet, digit_image, "fc1")
        chunks = split_task(task, 30)
        total = sum(
            float(c.inputs @ c.weights + c.bias) for c in chunks
        )
        assert total == pytest.approx(task.expected)

    def test_none_keeps_whole(self, small_lenet, digit_image):
        task = self._task(small_lenet, digit_image, "fc1")
        chunks = split_task(task, None)
        assert len(chunks) == 1
        assert chunks[0].n_pairs == 400

    def test_invalid_chunk_size(self, small_lenet, digit_image):
        task = self._task(small_lenet, digit_image, "conv1")
        with pytest.raises(ValueError):
            split_task(task, 0)
