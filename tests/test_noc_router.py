"""Unit tests for router internals (VC allocation, protocol checks)."""

from __future__ import annotations

import pytest

from repro.noc.flit import Flit, FlitType
from repro.noc.network import Network, NoCConfig
from repro.noc.router import ProtocolError, Router, VCState
from repro.noc.routing import Port, xy_route


def make_flit(packet_id=0, index=0, ftype=FlitType.HEAD_TAIL, dst=1):
    return Flit(
        packet_id=packet_id,
        index=index,
        flit_type=ftype,
        src=0,
        dst=dst,
        payload=0,
        width=64,
    )


def bare_router(node_id=0) -> Router:
    return Router(
        node_id=node_id, mesh_width=4, n_vcs=2, vc_depth=2, route_fn=xy_route
    )


class TestVCState:
    def test_free_slots(self):
        state = VCState(capacity=4)
        assert state.free_slots == 4
        state.fifo.append(make_flit())
        assert state.free_slots == 3


class TestAcceptFlit:
    def test_accept_and_count(self):
        router = bare_router()
        router.accept_flit(Port.LOCAL, 0, make_flit())
        assert router.buffered_flits == 1
        assert router.is_active

    def test_overflow_raises(self):
        router = bare_router()
        router.accept_flit(Port.LOCAL, 0, make_flit())
        router.accept_flit(Port.LOCAL, 0, make_flit())
        with pytest.raises(ProtocolError):
            router.accept_flit(Port.LOCAL, 0, make_flit())


class TestAllocation:
    def test_route_computed_for_head(self):
        router = bare_router()
        router.accept_flit(Port.LOCAL, 0, make_flit(dst=2))
        router.allocate()
        state = router.inputs[Port.LOCAL][0]
        assert state.out_port is Port.EAST

    def test_body_without_route_is_protocol_error(self):
        router = bare_router()
        orphan = make_flit(ftype=FlitType.BODY)
        router.accept_flit(Port.LOCAL, 0, orphan)
        with pytest.raises(ProtocolError):
            router.allocate()

    def test_vc_allocated_from_free_pool(self):
        router = bare_router()
        router.accept_flit(Port.LOCAL, 0, make_flit(dst=2))
        router.allocate()
        state = router.inputs[Port.LOCAL][0]
        assert state.out_vc is not None
        assert router.out_holder[Port.EAST][state.out_vc] == (Port.LOCAL, 0)

    def test_no_free_vc_blocks_allocation(self):
        router = bare_router()
        # Occupy both east VCs artificially.
        router.out_holder[Port.EAST][0] = (Port.WEST, 0)
        router.out_holder[Port.EAST][1] = (Port.WEST, 1)
        router.accept_flit(Port.LOCAL, 0, make_flit(dst=2))
        router.allocate()
        assert router.inputs[Port.LOCAL][0].out_vc is None

    def test_two_requesters_get_distinct_vcs(self):
        router = bare_router()
        router.accept_flit(Port.LOCAL, 0, make_flit(packet_id=1, dst=2))
        router.accept_flit(Port.NORTH, 0, make_flit(packet_id=2, dst=2))
        router.allocate()
        vc_a = router.inputs[Port.LOCAL][0].out_vc
        vc_b = router.inputs[Port.NORTH][0].out_vc
        assert vc_a is not None and vc_b is not None
        assert vc_a != vc_b

    def test_ejection_needs_no_real_vc(self):
        router = bare_router()
        router.accept_flit(Port.NORTH, 0, make_flit(dst=0))
        router.allocate()
        state = router.inputs[Port.NORTH][0]
        assert state.out_port is Port.LOCAL
        assert state.out_vc == 0


class TestTraversalViaNetwork:
    def test_tail_releases_vc(self):
        net = Network(NoCConfig(width=2, height=1, link_width=64))
        router = net.routers[0]
        head = make_flit(packet_id=9, index=0, ftype=FlitType.HEAD, dst=1)
        tail = make_flit(packet_id=9, index=1, ftype=FlitType.TAIL, dst=1)
        router.accept_flit(Port.LOCAL, 0, head)
        router.accept_flit(Port.LOCAL, 0, tail)
        router.allocate()
        out_vc = router.inputs[Port.LOCAL][0].out_vc
        router.switch_traversal(net)  # head crosses
        assert router.out_holder[Port.EAST][out_vc] == (Port.LOCAL, 0)
        router.switch_traversal(net)  # tail crosses
        assert router.out_holder[Port.EAST][out_vc] is None
        assert router.inputs[Port.LOCAL][0].out_port is None

    def test_credit_consumed_on_send(self):
        net = Network(NoCConfig(width=2, height=1, link_width=64))
        router = net.routers[0]
        router.accept_flit(Port.LOCAL, 0, make_flit(dst=1))
        router.allocate()
        out_vc = router.inputs[Port.LOCAL][0].out_vc
        before = router.credits[Port.EAST][out_vc]
        router.switch_traversal(net)
        assert router.credits[Port.EAST][out_vc] == before - 1

    def test_one_flit_per_outport_per_cycle(self):
        net = Network(NoCConfig(width=2, height=1, link_width=64))
        router = net.routers[0]
        # Two packets both heading east on different VCs.
        router.accept_flit(Port.LOCAL, 0, make_flit(packet_id=1, dst=1))
        router.accept_flit(Port.LOCAL, 1, make_flit(packet_id=2, dst=1))
        router.allocate()
        router.switch_traversal(net)
        # Only one flit may cross the east link per cycle.
        assert router.buffered_flits == 1
