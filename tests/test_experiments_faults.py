"""Fault injection, retry/timeout/backoff, and crash-safe resume.

The chaos matrix: every resilience feature of the campaign runner is
exercised against the fault it defends — injected into the *real*
multiprocessing path — and the recovered campaign must produce records
identical to a fault-free run (timing/provenance keys excluded).
"""

from __future__ import annotations

import json
import os
import signal
import threading

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.faults import (
    KILL_EXIT_CODE,
    NETWORK_FAULT_KINDS,
    FaultAction,
    FaultPlan,
    TransientFaultError,
    apply_fault_actions,
    backoff_seconds,
    classify_error,
    corrupt_cache_entry,
    tear_file_tail,
)
from repro.experiments.runner import CampaignRunner
from repro.experiments.spec import SweepSpec, campaign_id
from repro.experiments.store import CampaignJournal, ResultStore


def small_spec(**overrides) -> SweepSpec:
    kwargs = dict(
        name="chaos",
        model="lenet",
        base={"max_tasks_per_layer": 2},
        axes={
            "mesh": ["2x2:1", "3x3:1"],
            "ordering": ["O0", "O2"],
        },
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


def stripped(records):
    """Records minus run-provenance keys — the determinism comparison."""
    drop = ("cached", "resumed", "campaign")
    return [
        {k: v for k, v in r.items() if k not in drop} for r in records
    ]


def fault_free_records():
    return stripped(CampaignRunner(workers=2).run(small_spec()).records)


class TestFaultPlan:
    def test_index_and_job_id_prefix_keys(self):
        plan = FaultPlan(
            {
                0: [FaultAction("kill")],
                "2": [FaultAction("hang")],
                "abc123": [FaultAction("transient")],
            }
        )
        assert len(plan) == 3
        assert [a.kind for a in plan.actions_for("xyz", 0, 1)] == ["kill"]
        assert [a.kind for a in plan.actions_for("xyz", 2, 1)] == ["hang"]
        assert [
            a.kind for a in plan.actions_for("abc123def", 9, 1)
        ] == ["transient"]
        assert plan.actions_for("other", 1, 1) == []

    def test_attempt_filtering(self):
        plan = FaultPlan(
            {0: [FaultAction("kill", attempt=1),
                 FaultAction("transient", attempt=2)]}
        )
        assert [a.kind for a in plan.actions_for("j", 0, 1)] == ["kill"]
        assert [a.kind for a in plan.actions_for("j", 0, 2)] == [
            "transient"
        ]
        assert plan.actions_for("j", 0, 3) == []

    def test_roundtrip(self):
        plan = FaultPlan(
            {1: [FaultAction("hang", hang_seconds=2.5)],
             "dead": [FaultAction("kill")]},
            seed=7,
        )
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.to_dict() == plan.to_dict()
        assert clone.seed == 7

    def test_sampled_is_deterministic_and_seeded(self):
        jobs = small_spec().expand()
        a = FaultPlan.sampled(jobs, seed=3, kill_rate=0.5)
        b = FaultPlan.sampled(jobs, seed=3, kill_rate=0.5)
        c = FaultPlan.sampled(jobs, seed=4, kill_rate=0.5)
        assert a.to_dict() == b.to_dict()
        assert a.to_dict() != c.to_dict()
        assert FaultPlan.sampled(jobs, seed=3).to_dict()["actions"] == {}

    def test_bad_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultAction("explode")
        with pytest.raises(ValueError, match="1-based"):
            FaultAction("kill", attempt=0)
        with pytest.raises(ValueError, match="unknown FaultAction keys"):
            FaultAction.from_dict({"kind": "kill", "when": 2})


class TestNetworkFaultKinds:
    def test_network_kinds_accepted_and_flagged(self):
        for kind in NETWORK_FAULT_KINDS:
            action = FaultAction(kind)
            assert action.is_network is True
        assert FaultAction("kill").is_network is False
        assert FaultAction("transient").is_network is False

    def test_network_kinds_roundtrip(self):
        plan = FaultPlan(
            {0: [FaultAction("drop_connection"),
                 FaultAction("heartbeat_stall", hang_seconds=3.0)]}
        )
        clone = FaultPlan.from_dict(plan.to_dict())
        actions = clone.actions_for("j", 0, 1)
        assert [a.kind for a in actions] == [
            "drop_connection", "heartbeat_stall",
        ]
        assert actions[1].hang_seconds == 3.0

    def test_apply_fault_actions_skips_network_kinds(self):
        # Network faults fire on the wire, not inside the worker: a
        # payload carrying only network actions must execute cleanly.
        actions = [
            FaultAction(kind).to_dict() for kind in NETWORK_FAULT_KINDS
        ]
        apply_fault_actions(actions)  # no exit, no raise, no sleep
        # Mixed payloads still fire the in-process part.
        with pytest.raises(TransientFaultError):
            apply_fault_actions(
                actions + [FaultAction("transient").to_dict()]
            )


class TestTriage:
    def test_transient_actions_raise(self):
        with pytest.raises(TransientFaultError, match="attempt 2"):
            apply_fault_actions(
                [FaultAction("transient", attempt=2).to_dict()]
            )

    def test_classify_error(self):
        assert classify_error("TransientFaultError: x") == "transient"
        assert classify_error("JobTimeout: exceeded") == "transient"
        assert classify_error("WorkerCrash: died") == "transient"
        assert classify_error("ValueError: bad grid") == "permanent"
        assert classify_error("SimulationTimeout: drain") == "permanent"
        assert classify_error(None) == "permanent"
        # Kind-declared extensions widen the transient set.
        assert classify_error("OSError: EIO", ("OSError",)) == "transient"

    def test_backoff_is_seeded_exponential_and_capped(self):
        d1 = backoff_seconds(0, "job", 1, base=0.1, cap=10.0)
        d2 = backoff_seconds(0, "job", 2, base=0.1, cap=10.0)
        assert d1 == backoff_seconds(0, "job", 1, base=0.1, cap=10.0)
        assert 0.05 <= d1 < 0.15 and 0.1 <= d2 < 0.3
        assert backoff_seconds(0, "job", 30, base=0.1, cap=1.0) < 1.5
        assert backoff_seconds(0, "job", 1) != backoff_seconds(
            1, "job", 1
        )
        with pytest.raises(ValueError):
            backoff_seconds(0, "job", 0)


class TestSupervisedFaults:
    def test_transient_fault_retries_to_identical_records(self):
        plan = FaultPlan(
            {0: [FaultAction("transient")],
             2: [FaultAction("transient")]}
        )
        runner = CampaignRunner(
            workers=2, max_retries=2, backoff_base=0.01, fault_plan=plan
        )
        result = runner.run(small_spec())
        assert result.errors == 0
        assert result.retries == 2
        assert not result.quarantined
        assert stripped(result.records) == fault_free_records()

    def test_kill_is_captured_and_quarantined(self):
        plan = FaultPlan({1: [FaultAction("kill")]})
        runner = CampaignRunner(workers=2, fault_plan=plan)
        result = runner.run(small_spec())
        assert result.errors == 1
        assert result.worker_crashes == 1
        bad = [r for r in result.records if r["status"] == "error"]
        assert len(bad) == 1
        assert f"exited with code {KILL_EXIT_CODE}" in bad[0]["error"]
        assert bad[0]["error_class"] == "worker_crash"
        assert bad[0]["attempts"] == 1
        assert bad[0]["quarantined"] is True
        assert result.quarantined == [bad[0]["job_id"]]
        report = result.failure_report()
        assert report["failed"] == 1
        assert report["by_class"] == {"worker_crash": 1}

    def test_kill_then_clean_retry_succeeds(self):
        plan = FaultPlan({1: [FaultAction("kill", attempt=1)]})
        runner = CampaignRunner(
            workers=2, max_retries=1, backoff_base=0.01, fault_plan=plan
        )
        result = runner.run(small_spec())
        assert result.errors == 0
        assert (result.worker_crashes, result.retries) == (1, 1)
        assert stripped(result.records) == fault_free_records()

    def test_hang_is_reaped_by_timeout_then_retried(self):
        plan = FaultPlan({0: [FaultAction("hang", hang_seconds=30.0)]})
        runner = CampaignRunner(
            workers=2,
            job_timeout=2.0,
            max_retries=1,
            backoff_base=0.01,
            fault_plan=plan,
        )
        result = runner.run(small_spec())
        assert result.errors == 0
        assert result.timeouts == 1
        assert stripped(result.records) == fault_free_records()

    def test_timeout_without_retries_fails_structured(self):
        plan = FaultPlan({0: [FaultAction("hang", hang_seconds=30.0)]})
        runner = CampaignRunner(
            workers=2, job_timeout=1.0, fault_plan=plan
        )
        result = runner.run(small_spec())
        bad = [r for r in result.records if r["status"] == "error"]
        assert len(bad) == 1
        assert "JobTimeout" in bad[0]["error"]
        assert bad[0]["error_class"] == "timeout"
        assert result.timeouts == 1

    def test_permanent_errors_never_retry(self):
        # An impossible cycle budget is deterministic: retrying it
        # would burn attempts on a failure that cannot clear.
        spec = small_spec(max_cycles_per_layer=1)
        runner = CampaignRunner(workers=2, max_retries=3)
        result = runner.run(spec)
        assert result.errors == len(result.records)
        assert result.retries == 0
        assert not result.quarantined
        assert all(
            r["error_class"] == "permanent" and r["attempts"] == 1
            for r in result.records
        )

    def test_chaos_matrix_recovers_to_fault_free_records(self, tmp_path):
        """The ISSUE gate: kill + hang + transient in one campaign,
        with retries, lands on byte-identical records."""
        plan = FaultPlan(
            {
                0: [FaultAction("kill", attempt=1)],
                1: [FaultAction("hang", hang_seconds=30.0, attempt=1)],
                2: [FaultAction("transient", attempt=1)],
            }
        )
        store = ResultStore(tmp_path / "chaos.jsonl")
        runner = CampaignRunner(
            store=store,
            workers=2,
            job_timeout=3.0,
            max_retries=2,
            backoff_base=0.01,
            fault_plan=plan,
        )
        result = runner.run(small_spec())
        assert result.errors == 0
        assert result.worker_crashes == 1
        assert result.timeouts == 1
        assert result.retries == 3
        assert stripped(result.records) == fault_free_records()
        assert stripped(store.load()) == fault_free_records()
        assert result.metrics["runner.retries"] == 3
        assert result.metrics["runner.timeouts"] == 1
        assert result.metrics["runner.worker_crashes"] == 1


class TestJournalResume:
    def test_exhausted_retries_quarantine_then_resume_completes(
        self, tmp_path
    ):
        plan = FaultPlan(
            {0: [FaultAction("kill", attempt=1),
                 FaultAction("kill", attempt=2)]}
        )
        journal = CampaignJournal(tmp_path / "c.journal")
        spec = small_spec()
        first = CampaignRunner(
            workers=2,
            max_retries=1,
            backoff_base=0.01,
            fault_plan=plan,
            journal=journal,
        ).run(spec)
        assert first.errors == 1
        assert len(first.quarantined) == 1
        events = [e["event"] for e in journal.entries()]
        assert events[0] == "start"
        assert events.count("job") == 3  # only ok jobs journal
        assert events[-1] == "end"
        assert journal.start_entry()["campaign_id"] == campaign_id(spec)

        second = CampaignRunner(workers=2, journal=journal).run(spec)
        assert second.errors == 0
        assert second.resumed == 3
        assert second.misses == 1  # only the quarantined job re-ran
        assert stripped(second.records) == fault_free_records()
        assert [
            r.get("resumed", False) for r in second.records
        ].count(True) == 3
        assert second.metrics["runner.resumed"] == 3

    def test_resume_survives_torn_journal_tail(self, tmp_path):
        journal = CampaignJournal(tmp_path / "c.journal")
        spec = small_spec()
        CampaignRunner(workers=2, journal=journal).run(spec)
        tear_file_tail(journal.path)
        result = CampaignRunner(workers=2, journal=journal).run(spec)
        assert journal.torn_bytes_dropped > 0
        assert result.resumed == 4
        assert result.misses == 0
        assert stripped(result.records) == fault_free_records()

    def test_journal_recover_and_entries(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.journal")
        assert not journal.exists()
        journal.start("c-1234", "c", {"name": "c"}, "store.jsonl")
        journal.record_job(
            {"job_id": "abc", "status": "ok", "result": {}}
        )
        tear_file_tail(journal.path)
        assert journal.recover() > 0
        assert journal.recover() == 0  # idempotent
        assert [e["event"] for e in journal.entries()] == [
            "start", "job",
        ]
        assert list(journal.completed()) == ["abc"]

    def test_interior_corruption_is_skipped_not_fatal(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.journal")
        journal.start("c-1", "c", None)
        with journal.path.open("a") as fh:
            fh.write("{broken json\n")
        journal.record_job(
            {"job_id": "ok1", "status": "ok", "result": {}}
        )
        assert list(journal.completed()) == ["ok1"]
        assert journal.corrupt_skipped == 1


class TestInterrupt:
    def test_sigint_checkpoints_journal_and_resumes(self, tmp_path):
        spec = small_spec()
        journal = CampaignJournal(tmp_path / "c.journal")
        plan = FaultPlan(
            {i: [FaultAction("hang", hang_seconds=60.0)] for i in range(4)}
        )
        runner = CampaignRunner(
            workers=2, fault_plan=plan, journal=journal
        )
        timer = threading.Timer(
            1.0, lambda: os.kill(os.getpid(), signal.SIGINT)
        )
        timer.start()
        try:
            result = runner.run(spec)
        finally:
            timer.cancel()
        assert result.interrupted
        assert result.remaining  # hung jobs never completed
        assert [e["event"] for e in journal.entries()][-1] == "checkpoint"
        report = result.failure_report()
        assert report["interrupted"] is True
        assert report["remaining"] == result.remaining

        clean = CampaignRunner(workers=2, journal=journal).run(spec)
        assert not clean.interrupted
        assert clean.errors == 0
        assert stripped(clean.records) == fault_free_records()

    def test_sigterm_checkpoints_exactly_like_sigint(self, tmp_path):
        # Orchestrators (CI cancel, systemd stop, k8s eviction) send
        # SIGTERM, not SIGINT: the runner must checkpoint the same way.
        spec = small_spec()
        journal = CampaignJournal(tmp_path / "c.journal")
        plan = FaultPlan(
            {i: [FaultAction("hang", hang_seconds=60.0)] for i in range(4)}
        )
        runner = CampaignRunner(
            workers=2, fault_plan=plan, journal=journal
        )
        timer = threading.Timer(
            1.0, lambda: os.kill(os.getpid(), signal.SIGTERM)
        )
        timer.start()
        try:
            result = runner.run(spec)
        finally:
            timer.cancel()
        assert result.interrupted
        assert [e["event"] for e in journal.entries()][-1] == "checkpoint"
        # The previous SIGTERM disposition is restored afterwards.
        assert signal.getsignal(signal.SIGTERM) is signal.SIG_DFL

        clean = CampaignRunner(workers=2, journal=journal).run(spec)
        assert not clean.interrupted
        assert stripped(clean.records) == fault_free_records()


class TestSpecDrift:
    def test_resume_refuses_drifted_spec(self, tmp_path):
        from repro.experiments.runner import SpecDriftError

        journal = CampaignJournal(tmp_path / "c.journal")
        CampaignRunner(workers=1, journal=journal).run(
            small_spec(axes={"mesh": ["2x2:1"], "ordering": ["O0"]})
        )
        drifted = small_spec(
            axes={"mesh": ["2x2:1"], "ordering": ["O2"]}
        )
        with pytest.raises(SpecDriftError, match="drifted"):
            CampaignRunner(workers=1, journal=journal).run(drifted)

    def test_same_spec_resumes_without_complaint(self, tmp_path):
        journal = CampaignJournal(tmp_path / "c.journal")
        spec = small_spec(axes={"mesh": ["2x2:1"], "ordering": ["O0"]})
        CampaignRunner(workers=1, journal=journal).run(spec)
        again = CampaignRunner(workers=1, journal=journal).run(spec)
        assert again.resumed == 1


class TestCacheCorruption:
    @pytest.mark.parametrize("mode", ["flip", "truncate", "garbage"])
    def test_corrupt_entry_quarantines_and_recomputes(
        self, tmp_path, mode
    ):
        cache = ResultCache(tmp_path / "cache")
        spec = small_spec()
        baseline = CampaignRunner(cache=cache, workers=2).run(spec)
        victim = spec.expand()[1]
        path = corrupt_cache_entry(cache, victim, mode=mode)

        # The rerun itself detects the corruption: verify-on-read
        # quarantines the entry and the point re-simulates.
        rerun = CampaignRunner(cache=cache, workers=2).run(spec)
        assert (rerun.hits, rerun.misses) == (3, 1)
        assert rerun.metrics["cache.corrupt_entries"] == 1
        assert stripped(rerun.records) == stripped(baseline.records)
        # The recomputed record was re-cached at the same path and now
        # verifies clean; the corrupt original sits in quarantine.
        assert os.path.exists(path)
        assert cache.get_job(victim) is not None
        assert cache.corrupt_dropped == 1
        quarantined = list((tmp_path / "cache" / "quarantine").iterdir())
        assert len(quarantined) == 1
        assert quarantined[0].name.endswith(".corrupt")

    def test_flip_keeps_json_parseable(self, tmp_path):
        # The flip mode exists to prove the *digest* catches what a
        # JSON parse alone would serve back silently.
        cache = ResultCache(tmp_path / "cache")
        spec = small_spec()
        CampaignRunner(cache=cache, workers=2).run(spec)
        victim = spec.expand()[0]
        path = corrupt_cache_entry(cache, victim, mode="flip")
        json.loads(path.read_text())  # still valid JSON
        assert cache.get_job(victim) is None  # ...but never served


class TestInlineRetries:
    def test_workers_1_retries_transient_kind_errors(self, tmp_path):
        # The registered flaky kind fails on first execution and
        # succeeds on re-execution (file-marker state): with its error
        # type declared transient, one inline retry clears it.
        from repro.experiments.kinds import JOB_KINDS, JobKind
        from repro.experiments.kinds import register_job_kind
        from repro.experiments.spec import JobSpec
        from repro.accelerator.config import AcceleratorConfig

        marker = tmp_path / "fired"

        class OnceFlaky(JobKind):
            name = "once_flaky"
            transient_errors = ("ConnectionAbortedError",)

            def execute(self, job):
                if not marker.exists():
                    marker.write_text("x")
                    raise ConnectionAbortedError("blip")
                return dict(job_kind_result=True, metrics={})

        register_job_kind(OnceFlaky())
        try:
            job = JobSpec(
                kind="once_flaky",
                model="lenet",
                config=AcceleratorConfig(
                    width=2, height=2, n_mcs=1, max_tasks_per_layer=1
                ),
            )
            runner = CampaignRunner(
                workers=1, max_retries=2, backoff_base=0.01
            )
            result = runner.run([job])
            assert result.errors == 0
            assert result.retries == 1
        finally:
            JOB_KINDS.pop("once_flaky", None)

    def test_workers_1_permanent_error_annotated(self):
        spec = small_spec(
            axes={"mesh": ["2x2:1"], "ordering": ["O0"]},
            max_cycles_per_layer=1,
        )
        result = CampaignRunner(workers=1, max_retries=2).run(spec)
        assert result.errors == 1
        record = result.records[0]
        assert record["error_class"] == "permanent"
        assert record["attempts"] == 1
        assert record["quarantined"] is False
