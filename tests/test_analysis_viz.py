"""Tests for repro.analysis.viz."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.viz import bar_chart, count_grid, side_by_side, sparkline


class TestSparkline:
    def test_length_matches(self):
        assert len(sparkline([0.1, 0.5, 0.9])) == 3

    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_density(self):
        line = sparkline([0.0, 0.5, 1.0], v_max=1.0)
        blocks = " .:-=+*#%@"
        assert blocks.index(line[0]) < blocks.index(line[1]) < blocks.index(
            line[2]
        )

    def test_zero_series(self):
        assert sparkline([0.0, 0.0]) == "  "

    def test_bad_vmax(self):
        with pytest.raises(ValueError):
            sparkline([1.0], v_max=0.0)


class TestBarChart:
    def test_contains_labels_and_values(self):
        text = bar_chart({"O0": 100.0, "O2": 60.0}, "BTs")
        assert "BTs" in text
        assert "O0" in text
        assert "100" in text

    def test_bar_lengths_proportional(self):
        text = bar_chart({"a": 100.0, "b": 50.0}, "t", width=20)
        lines = text.splitlines()[1:]
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_empty(self):
        assert bar_chart({}, "empty") == "empty"


class TestCountGrid:
    def test_rows_rendered(self):
        grid = np.arange(12).reshape(3, 4)
        text = count_grid(grid, "grid")
        assert "grid" in text
        assert text.count("|") == 3

    def test_truncation_notice(self):
        grid = np.zeros((30, 2), dtype=int)
        text = count_grid(grid, "g", max_rows=5)
        assert "more rows" in text


class TestSideBySide:
    def test_line_alignment(self):
        left = "aa\nb"
        right = "XX\nYY\nZZ"
        combined = side_by_side(left, right, gap=2)
        lines = combined.splitlines()
        assert len(lines) == 3
        assert lines[0] == "aa  XX"
        assert lines[2].endswith("ZZ")
