"""SweepSpec expansion, job identity, and seed derivation."""

from __future__ import annotations

import pytest

from repro.accelerator.config import AcceleratorConfig
from repro.experiments.spec import (
    JobSpec,
    SweepSpec,
    derive_seed,
    parse_mesh_axis,
)
from repro.ordering.strategies import OrderingMethod


def small_spec(**overrides) -> SweepSpec:
    kwargs = dict(
        name="t",
        model="lenet",
        base={"max_tasks_per_layer": 2, "n_mcs": 1},
        axes={
            "mesh": ["2x2:1", "3x3:1"],
            "ordering": ["O0", "O1", "O2"],
        },
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(0, "a", {"x": 1}) == derive_seed(0, "a", {"x": 1})

    def test_sensitive_to_every_part(self):
        base = derive_seed(0, "a")
        assert derive_seed(1, "a") != base
        assert derive_seed(0, "b") != base

    def test_32bit_range(self):
        seed = derive_seed("anything", 123)
        assert 0 <= seed < 2**32


class TestParseMeshAxis:
    def test_full_form(self):
        assert parse_mesh_axis("8x8:4") == {
            "width": 8, "height": 8, "n_mcs": 4,
        }

    def test_default_mcs(self):
        assert parse_mesh_axis("4x4")["n_mcs"] == 2

    def test_bad_string(self):
        with pytest.raises(ValueError, match="bad mesh"):
            parse_mesh_axis("four-by-four")


class TestExpansion:
    def test_grid_size_and_order(self):
        jobs = small_spec().expand()
        assert len(jobs) == 6
        # Last axis (ordering) varies fastest.
        assert [j.config.ordering.value for j in jobs[:3]] == [
            "O0", "O1", "O2",
        ]
        assert jobs[0].config.width == 2
        assert jobs[3].config.width == 3

    def test_n_points_matches_expansion(self):
        spec = small_spec()
        assert spec.n_points == len(spec.expand())

    def test_expansion_is_reproducible(self):
        a = small_spec().expand()
        b = small_spec().expand()
        assert [j.job_id for j in a] == [j.job_id for j in b]

    def test_enum_axis_matches_string_axis(self):
        strings = small_spec(axes={"ordering": ["O1"]}).expand()
        enums = small_spec(
            axes={"ordering": [OrderingMethod.AFFILIATED]}
        ).expand()
        assert [j.job_id for j in strings] == [j.job_id for j in enums]

    def test_mesh_dict_values(self):
        spec = small_spec(
            axes={"mesh": [{"width": 3, "height": 2, "n_mcs": 1}]}
        )
        (job,) = spec.expand()
        assert (job.config.width, job.config.height) == (3, 2)

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            small_spec(axes={"ordering": []})

    def test_round_trip(self):
        spec = small_spec()
        rebuilt = SweepSpec.from_dict(spec.to_dict())
        assert [j.job_id for j in rebuilt.expand()] == [
            j.job_id for j in spec.expand()
        ]


class TestJobSeeds:
    def test_per_job_seeds_differ_across_points(self):
        seeds = {j.config.seed for j in small_spec().expand()}
        assert len(seeds) == 6

    def test_campaign_seed_changes_job_seeds(self):
        a = small_spec(seed=0).expand()
        b = small_spec(seed=1).expand()
        assert all(
            x.config.seed != y.config.seed for x, y in zip(a, b)
        )

    def test_explicit_base_seed_is_pinned(self):
        jobs = small_spec(
            base={"max_tasks_per_layer": 2, "n_mcs": 1, "seed": 2025}
        ).expand()
        assert {j.config.seed for j in jobs} == {2025}

    def test_seed_stable_when_grid_grows(self):
        narrow = small_spec(axes={"ordering": ["O0"]}).expand()
        wide = small_spec(axes={"ordering": ["O0", "O2"]}).expand()
        assert narrow[0].config.seed == wide[0].config.seed


class TestJobSpec:
    def test_job_id_tracks_identity(self):
        config = AcceleratorConfig(max_tasks_per_layer=2)
        a = JobSpec(model="lenet", config=config)
        b = JobSpec(model="lenet", config=config)
        assert a.job_id == b.job_id
        c = JobSpec(model="lenet", config=config, image_seed=6)
        assert c.job_id != a.job_id

    def test_round_trip(self):
        job = JobSpec(
            model="darknet",
            config=AcceleratorConfig(data_format="float32"),
            model_seed=21,
        )
        assert JobSpec.from_dict(job.to_dict()) == job

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            JobSpec(model="resnet", config=AcceleratorConfig())
