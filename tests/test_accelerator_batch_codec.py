"""Batch-vs-scalar task codec conformance (the two-codec contract).

Mirrors the two-core pattern of ``tests/test_noc_eventcore.py``: the
scalar codec is the retained reference oracle, the batch codec is the
default data plane, and equivalence is pinned bit-identically —
payload ints, permutation metadata, decoded words, and whole-simulator
run results.  The property section mirrors the
``tests/test_workloads_traces.py`` style: random widths, pair counts,
methods, fills and geometries must round-trip and match the oracle.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerator.config import TASK_CODECS, AcceleratorConfig
from repro.accelerator.flitize import TaskCodec
from repro.accelerator.simulator import run_model_on_noc
from repro.ordering.strategies import FillOrder, OrderingMethod


def _random_batch(rng, width, n_tasks, n_pairs):
    lim = 1 << min(width, 63)
    inputs = rng.integers(0, lim, size=(n_tasks, n_pairs), dtype=np.uint64)
    weights = rng.integers(0, lim, size=(n_tasks, n_pairs), dtype=np.uint64)
    biases = rng.integers(0, lim, size=n_tasks, dtype=np.uint64).tolist()
    return inputs, weights, biases


def _scalar_reference(codec, inputs, weights, biases, method, fill):
    return [
        codec.encode(
            [int(w) for w in inputs[t]],
            [int(w) for w in weights[t]],
            int(biases[t]),
            method,
            fill,
        )
        for t in range(len(biases))
    ]


class TestEncodeBatchEquivalence:
    @pytest.mark.parametrize("width", [8, 32])
    @pytest.mark.parametrize("method", list(OrderingMethod))
    @pytest.mark.parametrize("fill", list(FillOrder))
    def test_paper_geometries(self, width, method, fill):
        codec = TaskCodec(values_per_flit=16, word_width=width)
        rng = np.random.default_rng(width)
        for n_pairs in (1, 7, 25, 150):
            inputs, weights, biases = _random_batch(rng, width, 6, n_pairs)
            batch = codec.encode_batch(inputs, weights, biases, method, fill)
            assert batch == _scalar_reference(
                codec, inputs, weights, biases, method, fill
            )

    def test_ragged_tail_chunk_shape(self):
        # A 20-pair tail chunk of a 120-pair task (chunk_pairs=25):
        # padding fills the last flit and must sort identically.
        codec = TaskCodec(values_per_flit=16, word_width=8)
        rng = np.random.default_rng(9)
        inputs, weights, biases = _random_batch(rng, 8, 11, 20)
        for method in OrderingMethod:
            batch = codec.encode_batch(inputs, weights, biases, method)
            assert batch == _scalar_reference(
                codec,
                inputs,
                weights,
                biases,
                method,
                FillOrder.COLUMN_MAJOR_DEAL,
            )

    def test_index_payload_ablation(self):
        codec = TaskCodec(
            values_per_flit=8, word_width=8, include_index_payload=True
        )
        rng = np.random.default_rng(5)
        inputs, weights, biases = _random_batch(rng, 8, 4, 10)
        batch = codec.encode_batch(
            inputs, weights, biases, OrderingMethod.SEPARATED
        )
        ref = _scalar_reference(
            codec,
            inputs,
            weights,
            biases,
            OrderingMethod.SEPARATED,
            FillOrder.COLUMN_MAJOR_DEAL,
        )
        assert batch == ref
        assert len(batch[0].payloads) > batch[0].n_data_flits

    def test_exotic_width_falls_back_to_scalar(self):
        # 12-bit lanes have no numpy kernel; the batch API must still
        # return the scalar results.
        codec = TaskCodec(values_per_flit=4, word_width=12)
        rng = np.random.default_rng(6)
        inputs, weights, biases = _random_batch(rng, 12, 5, 5)
        batch = codec.encode_batch(
            inputs, weights, biases, OrderingMethod.AFFILIATED
        )
        assert batch == _scalar_reference(
            codec,
            inputs,
            weights,
            biases,
            OrderingMethod.AFFILIATED,
            FillOrder.COLUMN_MAJOR_DEAL,
        )

    def test_empty_batch(self):
        codec = TaskCodec(values_per_flit=16, word_width=8)
        assert codec.encode_batch(
            np.zeros((0, 25), dtype=np.uint8),
            np.zeros((0, 25), dtype=np.uint8),
            [],
            OrderingMethod.BASELINE,
        ) == []

    def test_rejects_mismatched_shapes(self):
        codec = TaskCodec(values_per_flit=16, word_width=8)
        with pytest.raises(ValueError, match="equal-shape"):
            codec.encode_batch(
                np.zeros((2, 3), dtype=np.uint8),
                np.zeros((3, 3), dtype=np.uint8),
                [0, 0],
                OrderingMethod.BASELINE,
            )
        with pytest.raises(ValueError, match="biases"):
            codec.encode_batch(
                np.zeros((2, 3), dtype=np.uint8),
                np.zeros((2, 3), dtype=np.uint8),
                [0],
                OrderingMethod.BASELINE,
            )

    def test_rejects_out_of_range_words(self):
        codec = TaskCodec(values_per_flit=4, word_width=8)
        with pytest.raises(ValueError, match="does not fit"):
            codec.encode_batch(
                np.array([[300]]), np.array([[1]]), [0],
                OrderingMethod.BASELINE,
            )
        with pytest.raises(ValueError, match="bias word.*does not fit"):
            codec.encode_batch(
                np.array([[1]], dtype=np.uint8),
                np.array([[1]], dtype=np.uint8),
                [300],
                OrderingMethod.BASELINE,
            )
        with pytest.raises(ValueError, match="bias word.*does not fit"):
            codec.encode_batch(
                np.array([[1]], dtype=np.uint8),
                np.array([[1]], dtype=np.uint8),
                [-1],
                OrderingMethod.BASELINE,
            )

    def test_mixed_magnitude_64bit_bias_list(self):
        # Regression: np.asarray([1, 2**64 - 1]) promotes to float64;
        # the batch path must accept every bias list the scalar oracle
        # accepts.
        codec = TaskCodec(values_per_flit=2, word_width=64)
        inputs = np.array([[1], [2]], dtype=np.uint64)
        weights = np.array([[3], [4]], dtype=np.uint64)
        biases = [1, 2**64 - 1]
        batch = codec.encode_batch(
            inputs, weights, biases, OrderingMethod.BASELINE
        )
        assert batch == _scalar_reference(
            codec,
            inputs,
            weights,
            biases,
            OrderingMethod.BASELINE,
            FillOrder.COLUMN_MAJOR_DEAL,
        )


class TestDecodeBatch:
    @pytest.mark.parametrize("method", list(OrderingMethod))
    def test_matches_scalar_decode_and_round_trips(self, method):
        codec = TaskCodec(values_per_flit=16, word_width=8)
        rng = np.random.default_rng(13)
        inputs, weights, biases = _random_batch(rng, 8, 8, 25)
        encoded = codec.encode_batch(inputs, weights, biases, method)
        decoded = codec.decode_batch(encoded)
        assert decoded == [codec.decode(e) for e in encoded]
        for t, d in enumerate(decoded):
            assert d.original_pairs() == list(
                zip(inputs[t].tolist(), weights[t].tolist())
            )
            assert d.bias == biases[t]

    def test_mixed_geometry_decodes_per_group(self):
        # A layer's ragged tail (or a whole arrival stream) mixes
        # geometries; decode must group, not raise or de-vectorise.
        codec = TaskCodec(values_per_flit=16, word_width=8)
        rng = np.random.default_rng(17)
        a, aw, ab = _random_batch(rng, 8, 2, 25)
        b, bw, bb = _random_batch(rng, 8, 2, 7)
        mixed = codec.encode_batch(
            a, aw, ab, OrderingMethod.BASELINE
        ) + codec.encode_batch(b, bw, bb, OrderingMethod.SEPARATED)
        # Interleave the geometries so group index lists are non-trivial.
        mixed = [mixed[0], mixed[2], mixed[1], mixed[3]]
        decoded = codec.decode_batch(mixed)
        assert decoded == [codec.decode(e) for e in mixed]

    def test_empty_batch(self):
        codec = TaskCodec(values_per_flit=16, word_width=8)
        assert codec.decode_batch([]) == []
        assert codec.decode_batch_words([]) == []
        assert codec.decode_inputs_only_batch([]) == []

    def test_rejects_inconsistent_flit_metadata(self):
        import dataclasses

        codec = TaskCodec(values_per_flit=16, word_width=8)
        rng = np.random.default_rng(23)
        inputs, weights, biases = _random_batch(rng, 8, 2, 25)
        encoded = codec.encode_batch(
            inputs, weights, biases, OrderingMethod.BASELINE
        )
        bad = [dataclasses.replace(encoded[0], n_data_flits=7), encoded[1]]
        with pytest.raises(ValueError, match="inconsistent flit count"):
            codec.decode_batch(bad)
        with pytest.raises(ValueError, match="inconsistent flit count"):
            codec.decode_batch_words(bad)

    def test_decode_batch_words_rejects_bad_permutation(self):
        import dataclasses

        codec = TaskCodec(values_per_flit=16, word_width=8)
        rng = np.random.default_rng(29)
        inputs, weights, biases = _random_batch(rng, 8, 3, 25)
        encoded = codec.encode_batch(
            inputs, weights, biases, OrderingMethod.SEPARATED
        )
        perm = list(encoded[0].input_perm)
        perm[0] = perm[1]  # duplicate: not a permutation
        bad = [dataclasses.replace(encoded[0], input_perm=tuple(perm))]
        bad += encoded[1:]
        with pytest.raises(ValueError, match="invalid permutation"):
            codec.decode_batch_words(bad)


class TestDecodeBatchWords:
    """The arrival-plane decode: original-order words, no DecodedTask."""

    @pytest.mark.parametrize("width", [8, 32, 12])
    @pytest.mark.parametrize("method", list(OrderingMethod))
    def test_matches_original_pairs(self, width, method):
        per_flit = 4 if width == 12 else 16
        codec = TaskCodec(values_per_flit=per_flit, word_width=width)
        rng = np.random.default_rng(width + 1)
        batches = [
            _random_batch(rng, width, 4, n_pairs)
            for n_pairs in (25, 7, 25, 1)
        ]
        encoded = [
            e
            for inputs, weights, biases in batches
            for e in codec.encode_batch(inputs, weights, biases, method)
        ]
        rows = codec.decode_batch_words(encoded)
        assert len(rows) == len(encoded)
        for e, (iw, ww, bias) in zip(encoded, rows):
            decoded = codec.decode(e)
            pairs = decoded.original_pairs()
            assert [int(v) for v in iw] == [p[0] for p in pairs]
            assert [int(v) for v in ww] == [p[1] for p in pairs]
            assert bias == decoded.bias


class TestDecodeInputsOnlyBatch:
    @pytest.mark.parametrize("width", [8, 32, 12])
    @pytest.mark.parametrize("method", list(OrderingMethod))
    def test_matches_scalar(self, width, method):
        per_flit = 4 if width == 12 else 16
        codec = TaskCodec(values_per_flit=per_flit, word_width=width)
        rng = np.random.default_rng(width + 3)
        lim = 1 << min(width, 63)
        encoded = []
        for n_values in (25, 9, 25, 2):
            matrix = rng.integers(
                0, lim, size=(3, n_values), dtype=np.uint64
            )
            encoded.extend(
                codec.encode_inputs_only_batch(matrix, method)
            )
        rows = codec.decode_inputs_only_batch(encoded)
        assert len(rows) == len(encoded)
        for e, row in zip(encoded, rows):
            assert [int(v) for v in row] == codec.decode_inputs_only(e)


class TestEncodeInputsOnlyBatch:
    @pytest.mark.parametrize("method", list(OrderingMethod))
    def test_matches_scalar(self, method):
        codec = TaskCodec(values_per_flit=16, word_width=8)
        rng = np.random.default_rng(21)
        values = rng.integers(0, 256, size=(7, 25), dtype=np.uint8)
        batch = codec.encode_inputs_only_batch(values, method)
        ref = [
            codec.encode_inputs_only([int(w) for w in values[t]], method)
            for t in range(7)
        ]
        assert batch == ref
        for t, e in enumerate(batch):
            assert codec.decode_inputs_only(e) == values[t].tolist()


class TestCodecProperties:
    """Hypothesis suite: random widths, pair counts, methods, fills."""

    @settings(deadline=None, max_examples=60)
    @given(
        st.sampled_from([8, 16, 24, 32, 64, 12]),
        st.integers(min_value=1, max_value=2),  # pairs_per_flit half
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=6),
        st.sampled_from(list(OrderingMethod)),
        st.sampled_from(list(FillOrder)),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_batch_round_trip_equals_scalar(
        self, width, half, n_pairs, n_tasks, method, fill, seed
    ):
        codec = TaskCodec(values_per_flit=2 * half, word_width=width)
        rng = np.random.default_rng(seed)
        inputs, weights, biases = _random_batch(rng, width, n_tasks, n_pairs)
        batch = codec.encode_batch(inputs, weights, biases, method, fill)
        assert batch == _scalar_reference(
            codec, inputs, weights, biases, method, fill
        )
        decoded = codec.decode_batch(batch)
        assert decoded == [codec.decode(e) for e in batch]
        for t, d in enumerate(decoded):
            assert d.original_pairs() == list(
                zip(inputs[t].tolist(), weights[t].tolist())
            )

    @settings(deadline=None, max_examples=40)
    @given(
        st.sampled_from([8, 16, 32, 64, 12]),
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=30),  # n_pairs
                st.integers(min_value=1, max_value=3),  # n_tasks
                st.sampled_from(list(OrderingMethod)),
                st.sampled_from(list(FillOrder)),
            ),
            min_size=1,
            max_size=4,
        ),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_mixed_geometry_decode_equals_scalar(
        self, width, shapes, seed
    ):
        """Grouped decode across widths x fills x ragged tails x
        mixed-geometry batches: every path must match the scalar
        reference element-for-element, in input order."""
        codec = TaskCodec(values_per_flit=4, word_width=width)
        rng = np.random.default_rng(seed)
        encoded = []
        for n_pairs, n_tasks, method, fill in shapes:
            inputs, weights, biases = _random_batch(
                rng, width, n_tasks, n_pairs
            )
            encoded.extend(
                codec.encode_batch(inputs, weights, biases, method, fill)
            )
        order = rng.permutation(len(encoded))
        encoded = [encoded[i] for i in order]

        decoded = codec.decode_batch(encoded)
        assert decoded == [codec.decode(e) for e in encoded]

        rows = codec.decode_batch_words(encoded)
        for e, (iw, ww, bias) in zip(encoded, rows):
            ref = codec.decode(e)
            pairs = ref.original_pairs()
            assert [int(v) for v in iw] == [p[0] for p in pairs]
            assert [int(v) for v in ww] == [p[1] for p in pairs]
            assert bias == ref.bias


def _run_config(codec_name: str, **overrides):
    from repro.workloads.figures import (
        figure_lenet_image,
        figure_trained_lenet,
    )

    config = AcceleratorConfig(
        width=4,
        height=4,
        n_mcs=2,
        max_tasks_per_layer=4,
        seed=11,
        codec=codec_name,
        **overrides,
    )
    return run_model_on_noc(
        config, figure_trained_lenet(), figure_lenet_image()
    )


class TestSimulatorCodecEquivalence:
    """Whole-run bit-identity: the codec twin of the event/stepped matrix."""

    MATRIX = [
        {"data_format": "fixed8", "ordering": OrderingMethod.SEPARATED},
        {"data_format": "float32", "ordering": OrderingMethod.AFFILIATED},
        {
            "data_format": "fixed8",
            "ordering": OrderingMethod.SEPARATED,
            "include_index_payload": True,
        },
        {
            "data_format": "fixed8",
            "ordering": OrderingMethod.SEPARATED,
            "mapping_policy": "group_affine",
            "weight_cache": True,
        },
        {
            "data_format": "fixed8",
            "ordering": OrderingMethod.BASELINE,
            "layer_barrier": False,
            "packet_scheduling": "count_desc",
        },
        {
            "data_format": "fixed8",
            "ordering": OrderingMethod.SEPARATED,
            "extra": {"model_ordering_latency": True},
        },
    ]

    @pytest.mark.parametrize(
        "overrides", MATRIX, ids=lambda o: "-".join(str(v) for v in o.values())
    )
    def test_batch_run_identical_to_scalar_oracle(self, overrides):
        results = {}
        for codec_name in TASK_CODECS:
            run = _run_config(codec_name, **overrides)
            assert run.all_verified
            payload = run.to_dict()
            payload["config"].pop("codec")
            # codec.* telemetry describes *which* codec ran, so it is
            # the one result family allowed to differ; everything else
            # (including event.* / router.* metrics) must be identical.
            payload["metrics"] = {
                name: value
                for name, value in payload["metrics"].items()
                if not name.startswith("codec.")
            }
            # The batch codec must actually take the arrival-plane fast
            # path (grouped decode at encode time); the scalar oracle
            # must decode every chunk per packet at the sink.
            decode_batch = run.metrics["codec.decode_batch_chunks"]
            decode_scalar = run.metrics["codec.decode_scalar_chunks"]
            if codec_name == "batch":
                assert decode_batch > 0 and decode_scalar == 0
            else:
                assert decode_batch == 0 and decode_scalar > 0
            results[codec_name] = payload
        assert results["batch"] == results["scalar"]

    def test_config_rejects_unknown_codec(self):
        with pytest.raises(ValueError, match="unknown task codec"):
            AcceleratorConfig(codec="vector")

    def test_config_round_trips_codec_field(self):
        config = AcceleratorConfig(codec="scalar")
        assert AcceleratorConfig.from_dict(config.to_dict()) == config
