"""The job-kind registry: dispatch, config schemas, and executors."""

from __future__ import annotations

import pytest

from repro.accelerator.config import AcceleratorConfig
from repro.experiments.kinds import (
    JOB_KINDS,
    JobKind,
    SyntheticJobConfig,
    job_kind,
    register_job_kind,
)
from repro.experiments.runner import CampaignRunner, execute_job
from repro.experiments.spec import JobSpec, SweepSpec
from repro.noc.network import NoCConfig
from repro.noc.traffic import SyntheticTrafficConfig, TrafficPattern


def tiny_accel(**overrides) -> AcceleratorConfig:
    kwargs = dict(width=2, height=2, n_mcs=1, max_tasks_per_layer=1)
    kwargs.update(overrides)
    return AcceleratorConfig(**kwargs)


def tiny_synth(**overrides) -> SyntheticJobConfig:
    traffic = dict(n_packets=10, seed=3)
    traffic.update(overrides)
    return SyntheticJobConfig(
        traffic=SyntheticTrafficConfig(**traffic),
        noc=NoCConfig(width=3, height=3, link_width=32),
    )


class TestRegistry:
    def test_builtin_kinds_registered(self):
        assert {"model", "batch", "synthetic"} <= set(JOB_KINDS)

    def test_unknown_kind_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown job kind 'quantum'"):
            job_kind("quantum")

    def test_error_names_registered_kinds(self):
        with pytest.raises(ValueError, match="batch.*model.*synthetic"):
            job_kind("nope")

    def test_register_custom_kind(self):
        class NullKind(JobKind):
            name = "null"

            def execute(self, job):
                return {"total_bit_transitions": 0}

        register_job_kind(NullKind())
        try:
            assert job_kind("null").execute(None) == {
                "total_bit_transitions": 0
            }
        finally:
            del JOB_KINDS["null"]


class TestSyntheticJobConfig:
    def test_round_trip(self):
        config = tiny_synth(pattern=TrafficPattern.HOTSPOT, payload="zero")
        rebuilt = SyntheticJobConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.traffic.pattern is TrafficPattern.HOTSPOT

    def test_from_flat_splits_disjoint_namespaces(self):
        config = SyntheticJobConfig.from_flat(
            {"n_packets": 5, "width": 2, "height": 2, "link_width": 16,
             "pattern": "complement"}
        )
        assert config.traffic.n_packets == 5
        assert config.traffic.pattern is TrafficPattern.BIT_COMPLEMENT
        assert (config.noc.width, config.noc.link_width) == (2, 16)

    def test_from_flat_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match=r"\['n_mcs'\]"):
            SyntheticJobConfig.from_flat({"n_mcs": 2})

    def test_unknown_nested_key_rejected(self):
        data = tiny_synth().to_dict()
        data["traffic"]["warp"] = 1
        with pytest.raises(ValueError, match="warp"):
            SyntheticJobConfig.from_dict(data)


class TestJobSpecKinds:
    def test_default_kind_is_model(self):
        job = JobSpec(model="lenet", config=tiny_accel())
        assert job.kind == "model"
        assert job.key_payload()["kind"] == "model"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            JobSpec(model="lenet", config=tiny_accel(), kind="quantum")

    def test_missing_config_rejected(self):
        with pytest.raises(ValueError, match="need a config"):
            JobSpec(model="lenet")

    def test_model_kind_rejects_batch_sizes(self):
        with pytest.raises(ValueError, match="kind='batch'"):
            JobSpec(model="lenet", config=tiny_accel(), n_images=3)

    def test_synthetic_rejects_model(self):
        with pytest.raises(ValueError, match="no DNN model"):
            JobSpec(model="lenet", config=tiny_synth(), kind="synthetic")

    def test_synthetic_rejects_accelerator_config(self):
        with pytest.raises(ValueError, match="SyntheticJobConfig"):
            JobSpec(config=tiny_accel(), kind="synthetic")

    def test_synthetic_rejects_workload_fields(self):
        """Fields the kind would drop on round-trip are rejected."""
        for override in ({"model_seed": 42}, {"image_seed": 9},
                         {"n_images": 2}):
            with pytest.raises(ValueError, match="traffic seed"):
                JobSpec(config=tiny_synth(), kind="synthetic", **override)

    def test_model_kind_rejects_synthetic_config(self):
        with pytest.raises(ValueError, match="AcceleratorConfig"):
            JobSpec(model="lenet", config=tiny_synth())

    def test_job_ids_differ_across_kinds(self):
        config = tiny_accel()
        single = JobSpec(model="lenet", config=config)
        batch = JobSpec(model="lenet", config=config, kind="batch")
        assert single.job_id != batch.job_id

    def test_batch_id_tracks_n_images(self):
        a = JobSpec(model="lenet", config=tiny_accel(), kind="batch",
                    n_images=2)
        b = JobSpec(model="lenet", config=tiny_accel(), kind="batch",
                    n_images=3)
        assert a.job_id != b.job_id

    def test_labels_are_kind_specific(self):
        assert JobSpec(
            model="lenet", config=tiny_accel()
        ).label().startswith("lenet ")
        assert "[x4]" in JobSpec(
            model="lenet", config=tiny_accel(), kind="batch", n_images=4
        ).label()
        assert JobSpec(
            config=tiny_synth(), kind="synthetic"
        ).label().startswith("synthetic ")


class TestExecutors:
    def test_synthetic_execute_record(self):
        job = JobSpec(config=tiny_synth(), kind="synthetic")
        record = execute_job(job.to_dict())
        assert record["status"] == "ok"
        assert record["kind"] == "synthetic"
        assert record["model"] is None
        result = record["result"]
        assert result["packets_delivered"] == 10
        assert result["total_bit_transitions"] > 0
        assert result["per_link"]
        assert sum(result["per_link"].values()) == (
            result["total_bit_transitions"]
        )

    def test_batch_execute_fans_out_per_image(self):
        job = JobSpec(
            model="lenet", config=tiny_accel(), kind="batch", n_images=2
        )
        record = execute_job(job.to_dict())
        assert record["status"] == "ok"
        result = record["result"]
        assert result["n_images"] == 2
        assert [img["image_index"] for img in result["images"]] == [0, 1]
        assert result["total_bit_transitions"] == sum(
            img["total_bit_transitions"] for img in result["images"]
        )
        assert result["tasks_verified"] == result["tasks_total"]
        # Different images produce different traffic.
        bts = {img["total_bit_transitions"] for img in result["images"]}
        assert len(bts) == 2
        assert result["mean_bt_per_image"] == (
            result["total_bit_transitions"] / 2
        )

    def test_model_record_carries_per_link(self):
        job = JobSpec(model="lenet", config=tiny_accel())
        record = execute_job(job.to_dict())
        per_link = record["result"]["per_link"]
        assert sum(per_link.values()) == (
            record["result"]["total_bit_transitions"]
        )


class TestSweepKinds:
    def test_synthetic_expansion(self):
        spec = SweepSpec(
            name="s",
            kind="synthetic",
            base={"n_packets": 5, "link_width": 32},
            axes={"mesh": ["2x2", "3x3"],
                  "pattern": ["uniform", "complement"]},
        )
        jobs = spec.expand()
        assert len(jobs) == 4
        assert all(j.kind == "synthetic" for j in jobs)
        assert jobs[0].config.noc.width == 2
        assert jobs[3].config.noc.width == 3
        assert jobs[3].config.traffic.pattern is (
            TrafficPattern.BIT_COMPLEMENT
        )

    def test_synthetic_derived_seeds_differ_per_point(self):
        spec = SweepSpec(
            kind="synthetic",
            base={"n_packets": 5},
            axes={"pattern": ["uniform", "transpose"]},
        )
        seeds = {j.config.traffic.seed for j in spec.expand()}
        assert len(seeds) == 2

    def test_batch_n_images_axis(self):
        spec = SweepSpec(
            kind="batch",
            base={"max_tasks_per_layer": 1, "width": 2, "height": 2,
                  "n_mcs": 1},
            axes={"n_images": [1, 2, 4]},
        )
        assert [j.n_images for j in spec.expand()] == [1, 2, 4]

    def test_unknown_kind_fails_at_spec_build(self):
        with pytest.raises(ValueError, match="unknown job kind 'quantum'"):
            SweepSpec(kind="quantum")

    def test_model_spec_rejects_n_images(self):
        """A dropped-field sweep must fail loudly, not run 1-image jobs."""
        with pytest.raises(ValueError, match="kind='batch'"):
            SweepSpec(kind="model", n_images=3)

    def test_synthetic_spec_rejects_workload_fields(self):
        for override in ({"model": "darknet"}, {"model_seed": 9},
                         {"image_seed": 9}, {"n_images": 2}):
            with pytest.raises(ValueError, match="synthetic sweeps"):
                SweepSpec(kind="synthetic", **override)

    def test_kind_is_not_sweepable(self):
        with pytest.raises(ValueError, match="not sweepable"):
            SweepSpec(axes={"kind": ["model", "batch"]})

    def test_unknown_synthetic_field_fails_at_expansion(self):
        spec = SweepSpec(
            kind="synthetic", axes={"ordering": [["O0"]]}
        )
        with pytest.raises(
            ValueError,
            match="job kind 'synthetic'.*unknown synthetic config fields",
        ):
            spec.expand()

    def test_unknown_model_field_fails_at_expansion(self):
        spec = SweepSpec(axes={"warp_drive": [1, 2]})
        with pytest.raises(
            ValueError, match="job kind 'model'.*warp_drive"
        ):
            spec.expand()

    def test_round_trip_preserves_kind(self):
        spec = SweepSpec(
            kind="synthetic",
            base={"n_packets": 5},
            axes={"pattern": ["uniform"]},
        )
        rebuilt = SweepSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert [j.job_id for j in rebuilt.expand()] == [
            j.job_id for j in spec.expand()
        ]


class TestKindCampaigns:
    def test_synthetic_campaign_caches(self, tmp_path):
        from repro.experiments.cache import ResultCache

        spec = SweepSpec(
            name="s",
            kind="synthetic",
            base={"n_packets": 5, "link_width": 32},
            axes={"pattern": ["uniform", "complement"]},
        )
        runner = CampaignRunner(
            cache=ResultCache(tmp_path / "cache"), workers=1
        )
        cold = runner.run(spec)
        assert (cold.hits, cold.misses, cold.errors) == (0, 2, 0)
        warm = runner.run(spec)
        assert (warm.hits, warm.misses) == (2, 0)

    def test_kinds_do_not_share_cache_entries(self, tmp_path):
        from repro.experiments.cache import ResultCache

        cache = ResultCache(tmp_path / "cache")
        config = tiny_accel()
        single = JobSpec(model="lenet", config=config)
        batch = JobSpec(model="lenet", config=config, kind="batch")
        runner = CampaignRunner(cache=cache, workers=1)
        runner.run([single])
        followup = runner.run([batch])
        assert followup.hits == 0
