"""The job-kind registry: dispatch, config schemas, and executors."""

from __future__ import annotations

import pytest

from repro.accelerator.config import AcceleratorConfig
from repro.experiments.kinds import (
    JOB_KINDS,
    JobKind,
    SyntheticJobConfig,
    job_kind,
    register_job_kind,
)
from repro.experiments.runner import CampaignRunner, execute_job
from repro.experiments.spec import JobSpec, SweepSpec
from repro.noc.network import NoCConfig
from repro.noc.traffic import SyntheticTrafficConfig, TrafficPattern


def tiny_accel(**overrides) -> AcceleratorConfig:
    kwargs = dict(width=2, height=2, n_mcs=1, max_tasks_per_layer=1)
    kwargs.update(overrides)
    return AcceleratorConfig(**kwargs)


def tiny_synth(**overrides) -> SyntheticJobConfig:
    traffic = dict(n_packets=10, seed=3)
    traffic.update(overrides)
    return SyntheticJobConfig(
        traffic=SyntheticTrafficConfig(**traffic),
        noc=NoCConfig(width=3, height=3, link_width=32),
    )


class TestRegistry:
    def test_builtin_kinds_registered(self):
        assert {"model", "batch", "synthetic"} <= set(JOB_KINDS)

    def test_unknown_kind_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown job kind 'quantum'"):
            job_kind("quantum")

    def test_error_names_registered_kinds(self):
        with pytest.raises(ValueError, match="batch.*model.*synthetic"):
            job_kind("nope")

    def test_register_custom_kind(self):
        class NullKind(JobKind):
            name = "null"

            def execute(self, job):
                return {"total_bit_transitions": 0}

        register_job_kind(NullKind())
        try:
            assert job_kind("null").execute(None) == {
                "total_bit_transitions": 0
            }
        finally:
            del JOB_KINDS["null"]


class TestSyntheticJobConfig:
    def test_round_trip(self):
        config = tiny_synth(pattern=TrafficPattern.HOTSPOT, payload="zero")
        rebuilt = SyntheticJobConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.traffic.pattern is TrafficPattern.HOTSPOT

    def test_from_flat_splits_disjoint_namespaces(self):
        config = SyntheticJobConfig.from_flat(
            {"n_packets": 5, "width": 2, "height": 2, "link_width": 16,
             "pattern": "complement"}
        )
        assert config.traffic.n_packets == 5
        assert config.traffic.pattern is TrafficPattern.BIT_COMPLEMENT
        assert (config.noc.width, config.noc.link_width) == (2, 16)

    def test_from_flat_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match=r"\['n_mcs'\]"):
            SyntheticJobConfig.from_flat({"n_mcs": 2})

    def test_unknown_nested_key_rejected(self):
        data = tiny_synth().to_dict()
        data["traffic"]["warp"] = 1
        with pytest.raises(ValueError, match="warp"):
            SyntheticJobConfig.from_dict(data)


class TestJobSpecKinds:
    def test_default_kind_is_model(self):
        job = JobSpec(model="lenet", config=tiny_accel())
        assert job.kind == "model"
        assert job.key_payload()["kind"] == "model"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            JobSpec(model="lenet", config=tiny_accel(), kind="quantum")

    def test_missing_config_rejected(self):
        with pytest.raises(ValueError, match="need a config"):
            JobSpec(model="lenet")

    def test_model_kind_rejects_batch_sizes(self):
        with pytest.raises(ValueError, match="kind='batch'"):
            JobSpec(model="lenet", config=tiny_accel(), n_images=3)

    def test_synthetic_rejects_model(self):
        with pytest.raises(ValueError, match="no DNN model"):
            JobSpec(model="lenet", config=tiny_synth(), kind="synthetic")

    def test_synthetic_rejects_accelerator_config(self):
        with pytest.raises(ValueError, match="SyntheticJobConfig"):
            JobSpec(config=tiny_accel(), kind="synthetic")

    def test_synthetic_rejects_workload_fields(self):
        """Fields the kind would drop on round-trip are rejected."""
        for override in ({"model_seed": 42}, {"image_seed": 9},
                         {"n_images": 2}):
            with pytest.raises(ValueError, match="traffic seed"):
                JobSpec(config=tiny_synth(), kind="synthetic", **override)

    def test_model_kind_rejects_synthetic_config(self):
        with pytest.raises(ValueError, match="AcceleratorConfig"):
            JobSpec(model="lenet", config=tiny_synth())

    def test_job_ids_differ_across_kinds(self):
        config = tiny_accel()
        single = JobSpec(model="lenet", config=config)
        batch = JobSpec(model="lenet", config=config, kind="batch")
        assert single.job_id != batch.job_id

    def test_batch_id_tracks_n_images(self):
        a = JobSpec(model="lenet", config=tiny_accel(), kind="batch",
                    n_images=2)
        b = JobSpec(model="lenet", config=tiny_accel(), kind="batch",
                    n_images=3)
        assert a.job_id != b.job_id

    def test_labels_are_kind_specific(self):
        assert JobSpec(
            model="lenet", config=tiny_accel()
        ).label().startswith("lenet ")
        assert "[x4]" in JobSpec(
            model="lenet", config=tiny_accel(), kind="batch", n_images=4
        ).label()
        assert JobSpec(
            config=tiny_synth(), kind="synthetic"
        ).label().startswith("synthetic ")


class TestExecutors:
    def test_synthetic_execute_record(self):
        job = JobSpec(config=tiny_synth(), kind="synthetic")
        record = execute_job(job.to_dict())
        assert record["status"] == "ok"
        assert record["kind"] == "synthetic"
        assert record["model"] is None
        result = record["result"]
        assert result["packets_delivered"] == 10
        assert result["total_bit_transitions"] > 0
        assert result["per_link"]
        assert sum(result["per_link"].values()) == (
            result["total_bit_transitions"]
        )

    def test_batch_execute_fans_out_per_image(self):
        job = JobSpec(
            model="lenet", config=tiny_accel(), kind="batch", n_images=2
        )
        record = execute_job(job.to_dict())
        assert record["status"] == "ok"
        result = record["result"]
        assert result["n_images"] == 2
        assert [img["image_index"] for img in result["images"]] == [0, 1]
        assert result["total_bit_transitions"] == sum(
            img["total_bit_transitions"] for img in result["images"]
        )
        assert result["tasks_verified"] == result["tasks_total"]
        # Different images produce different traffic.
        bts = {img["total_bit_transitions"] for img in result["images"]}
        assert len(bts) == 2
        assert result["mean_bt_per_image"] == (
            result["total_bit_transitions"] / 2
        )

    def test_model_record_carries_per_link(self):
        job = JobSpec(model="lenet", config=tiny_accel())
        record = execute_job(job.to_dict())
        per_link = record["result"]["per_link"]
        assert sum(per_link.values()) == (
            record["result"]["total_bit_transitions"]
        )


class TestSweepKinds:
    def test_synthetic_expansion(self):
        spec = SweepSpec(
            name="s",
            kind="synthetic",
            base={"n_packets": 5, "link_width": 32},
            axes={"mesh": ["2x2", "3x3"],
                  "pattern": ["uniform", "complement"]},
        )
        jobs = spec.expand()
        assert len(jobs) == 4
        assert all(j.kind == "synthetic" for j in jobs)
        assert jobs[0].config.noc.width == 2
        assert jobs[3].config.noc.width == 3
        assert jobs[3].config.traffic.pattern is (
            TrafficPattern.BIT_COMPLEMENT
        )

    def test_synthetic_derived_seeds_differ_per_point(self):
        spec = SweepSpec(
            kind="synthetic",
            base={"n_packets": 5},
            axes={"pattern": ["uniform", "transpose"]},
        )
        seeds = {j.config.traffic.seed for j in spec.expand()}
        assert len(seeds) == 2

    def test_batch_n_images_axis(self):
        spec = SweepSpec(
            kind="batch",
            base={"max_tasks_per_layer": 1, "width": 2, "height": 2,
                  "n_mcs": 1},
            axes={"n_images": [1, 2, 4]},
        )
        assert [j.n_images for j in spec.expand()] == [1, 2, 4]

    def test_unknown_kind_fails_at_spec_build(self):
        with pytest.raises(ValueError, match="unknown job kind 'quantum'"):
            SweepSpec(kind="quantum")

    def test_model_spec_rejects_n_images(self):
        """A dropped-field sweep must fail loudly, not run 1-image jobs."""
        with pytest.raises(ValueError, match="kind='batch'"):
            SweepSpec(kind="model", n_images=3)

    def test_synthetic_spec_rejects_workload_fields(self):
        for override in ({"model": "darknet"}, {"model_seed": 9},
                         {"image_seed": 9}, {"n_images": 2}):
            with pytest.raises(ValueError, match="synthetic sweeps"):
                SweepSpec(kind="synthetic", **override)

    def test_kind_is_not_sweepable(self):
        with pytest.raises(ValueError, match="not sweepable"):
            SweepSpec(axes={"kind": ["model", "batch"]})

    def test_unknown_synthetic_field_fails_at_expansion(self):
        spec = SweepSpec(
            kind="synthetic", axes={"ordering": [["O0"]]}
        )
        with pytest.raises(
            ValueError,
            match="job kind 'synthetic'.*unknown synthetic config fields",
        ):
            spec.expand()

    def test_unknown_model_field_fails_at_expansion(self):
        spec = SweepSpec(axes={"warp_drive": [1, 2]})
        with pytest.raises(
            ValueError, match="job kind 'model'.*warp_drive"
        ):
            spec.expand()

    def test_round_trip_preserves_kind(self):
        spec = SweepSpec(
            kind="synthetic",
            base={"n_packets": 5},
            axes={"pattern": ["uniform"]},
        )
        rebuilt = SweepSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert [j.job_id for j in rebuilt.expand()] == [
            j.job_id for j in spec.expand()
        ]


class TestKindCampaigns:
    def test_synthetic_campaign_caches(self, tmp_path):
        from repro.experiments.cache import ResultCache

        spec = SweepSpec(
            name="s",
            kind="synthetic",
            base={"n_packets": 5, "link_width": 32},
            axes={"pattern": ["uniform", "complement"]},
        )
        runner = CampaignRunner(
            cache=ResultCache(tmp_path / "cache"), workers=1
        )
        cold = runner.run(spec)
        assert (cold.hits, cold.misses, cold.errors) == (0, 2, 0)
        warm = runner.run(spec)
        assert (warm.hits, warm.misses) == (2, 0)

    def test_kinds_do_not_share_cache_entries(self, tmp_path):
        from repro.experiments.cache import ResultCache

        cache = ResultCache(tmp_path / "cache")
        config = tiny_accel()
        single = JobSpec(model="lenet", config=config)
        batch = JobSpec(model="lenet", config=config, kind="batch")
        runner = CampaignRunner(cache=cache, workers=1)
        runner.run([single])
        followup = runner.run([batch])
        assert followup.hits == 0


def recorded_trace_file(path) -> str:
    """Record a small replayable trace to ``path``; returns the path."""
    from repro.noc.flit import make_packet
    from repro.noc.network import Network
    from repro.noc.recorder import TraceRecorder

    net = Network(NoCConfig(width=3, height=3, link_width=32))
    net.trace_collector = TraceRecorder()
    for src in range(5):
        net.send_packet(make_packet(src, 8, [src * 37, src ^ 0x1F], 32))
    net.run_until_drained()
    net.trace_collector.finish(net.config).save(path)
    return str(path)


class TestReplayJobConfig:
    def test_from_flat_pins_content_digest(self, tmp_path):
        from repro.experiments.kinds import ReplayJobConfig
        from repro.workloads.traces import trace_digest

        trace = recorded_trace_file(tmp_path / "t.trace.gz")
        config = ReplayJobConfig.from_flat({"trace": trace})
        assert config.trace_sha256 == trace_digest(trace)

    def test_missing_file_fails_at_build(self, tmp_path):
        from repro.experiments.kinds import ReplayJobConfig

        with pytest.raises(ValueError, match="cannot read trace file"):
            ReplayJobConfig.from_flat(
                {"trace": str(tmp_path / "ghost.gz")}
            )

    def test_validation(self, tmp_path):
        from repro.experiments.kinds import ReplayJobConfig

        with pytest.raises(ValueError, match="ordering"):
            ReplayJobConfig(trace="t", ordering="O2")
        with pytest.raises(ValueError, match="coding"):
            ReplayJobConfig(trace="t", coding="gray")
        with pytest.raises(ValueError, match="core"):
            ReplayJobConfig(trace="t", core="warp")
        with pytest.raises(ValueError, match="offline"):
            ReplayJobConfig(trace="t", coding="delta", core="both")
        with pytest.raises(ValueError, match="link_latency"):
            ReplayJobConfig(trace="t", link_latency=2)

    def test_round_trip(self):
        from repro.experiments.kinds import ReplayJobConfig

        config = ReplayJobConfig(
            trace="a.gz", trace_sha256="ff", ordering="popcount_desc",
            core="both", link_latency=2,
        )
        assert ReplayJobConfig.from_dict(config.to_dict()) == config


class TestReplayKind:
    def expand(self, trace, **axes):
        spec = SweepSpec(
            name="r", kind="replay", base={"trace": trace},
            axes={k: list(v) for k, v in axes.items()},
        )
        return spec.expand()

    def test_offline_replay_matches_recording(self, tmp_path):
        trace = recorded_trace_file(tmp_path / "t.trace.gz")
        (job,) = self.expand(trace, ordering=["none"])
        result = job_kind("replay").execute(job)
        assert result["matches_recorded"] is True
        assert (
            result["total_bit_transitions"]
            == result["recorded_bit_transitions"]
        )
        assert result["cores"] == []

    def test_differential_replay_agrees(self, tmp_path):
        trace = recorded_trace_file(tmp_path / "t.trace.gz")
        (job,) = self.expand(trace, core=["both"])
        result = job_kind("replay").execute(job)
        assert result["cores"] == ["event", "stepped"]
        assert result["cores_agree"] is True
        assert result["matches_recorded"] is True

    def test_latency_override_is_not_fidelity_checked(self, tmp_path):
        trace = recorded_trace_file(tmp_path / "t.trace.gz")
        (job,) = self.expand(trace, core=["event"], link_latency=[2])
        result = job_kind("replay").execute(job)
        assert result["matches_recorded"] is None
        assert result["total_cycles"] > 0

    def test_swapped_trace_file_fails_loudly(self, tmp_path):
        trace = recorded_trace_file(tmp_path / "t.trace.gz")
        (job,) = self.expand(trace)
        recorded_trace_file(tmp_path / "other.trace.gz")
        # Overwrite with different content after expansion.
        import pathlib

        pathlib.Path(trace).write_bytes(
            pathlib.Path(tmp_path / "other.trace.gz").read_bytes()[:-1]
        )
        with pytest.raises(ValueError, match="changed since"):
            job_kind("replay").execute(job)

    def test_replay_jobs_take_no_model_fields(self, tmp_path):
        trace = recorded_trace_file(tmp_path / "t.trace.gz")
        with pytest.raises(ValueError, match="no model_seed"):
            SweepSpec(kind="replay", base={"trace": trace},
                      model_seed=7).expand()
        with pytest.raises(ValueError, match="takes no mesh"):
            SweepSpec(kind="replay", base={"trace": trace},
                      axes={"mesh": ["2x2:1"]}).expand()

    def test_replay_campaign_caches_by_content(self, tmp_path):
        from repro.experiments.cache import ResultCache

        trace = recorded_trace_file(tmp_path / "t.trace.gz")
        spec = SweepSpec(
            name="r", kind="replay", base={"trace": trace},
            axes={"ordering": ["none", "popcount_desc"]},
        )
        runner = CampaignRunner(
            cache=ResultCache(tmp_path / "cache"), workers=1
        )
        cold = runner.run(spec)
        assert (cold.hits, cold.misses, cold.errors) == (0, 2, 0)
        warm = runner.run(spec)
        assert (warm.hits, warm.misses) == (2, 0)
        # Rewriting the trace (new bytes — packet ids differ between
        # recordings — hence a new digest) re-simulates every point.
        import shutil

        recorded_trace_file(tmp_path / "t2.trace.gz")
        shutil.copy(tmp_path / "t2.trace.gz", trace)
        respun = runner.run(
            SweepSpec(
                name="r", kind="replay", base={"trace": trace},
                axes={"ordering": ["none", "popcount_desc"]},
            )
        )
        assert respun.hits == 0

    def test_error_record_not_cached(self, tmp_path):
        trace = recorded_trace_file(tmp_path / "t.trace.gz")
        (job,) = self.expand(trace)
        import pathlib

        blob = pathlib.Path(trace).read_bytes()
        pathlib.Path(trace).write_bytes(blob[: len(blob) // 2])
        record = execute_job(job.to_dict())
        assert record["status"] == "error"
        assert "changed since" in record["error"] or "trace" in record["error"]


class TestReplayDivergenceDetection:
    def test_cross_core_divergence_is_a_job_failure(self, tmp_path,
                                                    monkeypatch):
        """A per-link mismatch between cores must fail the job loudly."""
        import repro.experiments.kinds as kinds

        trace = recorded_trace_file(tmp_path / "t.trace.gz")
        (job,) = SweepSpec(
            kind="replay", base={"trace": trace}, axes={"core": ["both"]}
        ).expand()

        class FakeLedger:
            def __init__(self, links):
                self._links = links

            def per_link(self):
                return dict(self._links)

        class FakeNet:
            def __init__(self, links):
                self.ledger = FakeLedger(links)

        fakes = iter(
            [FakeNet({"R0.EAST": 10}), FakeNet({"R0.EAST": 11})]
        )
        monkeypatch.setattr(
            kinds, "replay_through_network",
            lambda *a, **k: next(fakes),
        )
        with pytest.raises(RuntimeError, match="divergence"):
            job_kind("replay").execute(job)
        # Through the runner it becomes a clean error record.
        fakes = iter(
            [FakeNet({"R0.EAST": 10}), FakeNet({"R0.EAST": 11})]
        )
        record = execute_job(job.to_dict())
        assert record["status"] == "error"
        assert "divergence" in record["error"]

    def test_replay_report_notes_for_foreign_pivots(self, tmp_path):
        from repro.experiments.cache import ResultCache
        from repro.experiments.report import campaign_report

        trace = recorded_trace_file(tmp_path / "t.trace.gz")
        spec = SweepSpec(
            name="r", kind="replay", base={"trace": trace},
            axes={"ordering": ["none"]},
        )
        runner = CampaignRunner(
            cache=ResultCache(tmp_path / "cache"), workers=1
        )
        records = runner.run(spec).records
        assert "no per-layer data" in campaign_report(records, "layer")
        assert "no model pivot" in campaign_report(records, "model")
        assert "Replayed BTs" in campaign_report(records, "mesh")


class TestReplayContentAddressing:
    def test_programmatic_config_without_digest_is_content_keyed(
        self, tmp_path
    ):
        """A ReplayJobConfig built without trace_sha256 must still key
        the cache by content: rewriting the trace changes the job id."""
        from repro.experiments.kinds import ReplayJobConfig

        trace = recorded_trace_file(tmp_path / "t.trace.gz")
        job = JobSpec(
            kind="replay", config=ReplayJobConfig(trace=trace)
        )
        payload = job.key_payload()
        assert payload["config"]["trace_sha256"]  # filled from content
        before = job.job_id
        recorded_trace_file(tmp_path / "t2.trace.gz")
        import shutil

        shutil.copy(tmp_path / "t2.trace.gz", trace)
        assert job.job_id != before

    def test_missing_file_degrades_to_empty_digest(self, tmp_path):
        from repro.experiments.kinds import ReplayJobConfig

        job = JobSpec(
            kind="replay",
            config=ReplayJobConfig(trace=str(tmp_path / "ghost.gz")),
        )
        assert job.key_payload()["config"]["trace_sha256"] == ""
        record = execute_job(job.to_dict())
        assert record["status"] == "error"


class TestReplayInjectionLinkComparability:
    def test_record_injection_traces_report_transmit_totals(self, tmp_path):
        """With record_injection=True, the live ledger counts NI->router
        links the trace never covers; headline replay numbers must stay
        on the trace's measurement surface so offline and network rows
        (and recorded_bit_transitions) agree on faithful replays."""
        from repro.noc.flit import make_packet
        from repro.noc.network import Network
        from repro.noc.recorder import TraceRecorder

        net = Network(
            NoCConfig(width=3, height=3, link_width=32,
                      record_injection=True)
        )
        net.trace_collector = TraceRecorder()
        for src in range(5):
            net.send_packet(make_packet(src, 8, [src * 37, src ^ 0x1F], 32))
        net.run_until_drained()
        path = tmp_path / "inj.trace.gz"
        net.trace_collector.finish(net.config).save(path)

        results = {}
        for core in ("offline", "event"):
            (job,) = SweepSpec(
                kind="replay", base={"trace": str(path)},
                axes={"core": [core]},
            ).expand()
            results[core] = job_kind("replay").execute(job)
        event = results["event"]
        assert event["matches_recorded"] is True
        assert (
            event["total_bit_transitions"]
            == event["recorded_bit_transitions"]
            == results["offline"]["total_bit_transitions"]
        )
        # The unfiltered network-wide sum (incl. NI links) is larger
        # and reported separately.
        assert (
            event["network_bit_transitions"]
            > event["total_bit_transitions"]
        )
        assert not any(
            name.startswith("NI") for name in event["per_link"]
        )


def tiny_serving(**overrides):
    from repro.experiments.kinds import ServingJobConfig
    from repro.serving import ServingConfig, parse_tenant_mix

    serving = dict(
        tenants=parse_tenant_mix("uniform+hotspot"),
        background_rate=0.05,
        n_requests=2,
        packets_per_request=2,
        flits_per_packet=2,
        seed=3,
    )
    serving.update(overrides)
    return ServingJobConfig(
        serving=ServingConfig(**serving),
        noc=NoCConfig(width=4, height=4, link_width=128),
    )


class TestServingJobConfig:
    def test_round_trip(self):
        from repro.experiments.kinds import ServingJobConfig

        config = tiny_serving()
        assert ServingJobConfig.from_dict(config.to_dict()) == config

    def test_from_flat_splits_disjoint_namespaces(self):
        from repro.experiments.kinds import ServingJobConfig

        config = ServingJobConfig.from_flat(
            {"tenants": "lenet+uniform", "background_rate": 0.02,
             "width": 4, "height": 4, "core": "event"}
        )
        assert [t.name for t in config.serving.tenants] == [
            "lenet", "uniform"
        ]
        assert config.serving.background_rate == 0.02
        assert config.noc.core == "event"

    def test_from_flat_link_width_follows_data_format(self):
        from repro.experiments.kinds import ServingJobConfig

        fixed = ServingJobConfig.from_flat({"tenants": "uniform"})
        wide = ServingJobConfig.from_flat(
            {"tenants": "uniform", "data_format": "float32"}
        )
        assert fixed.noc.link_width == 128
        assert wide.noc.link_width == 512

    def test_from_flat_rejects_unknown_fields(self):
        from repro.experiments.kinds import ServingJobConfig

        with pytest.raises(ValueError, match="unknown serving config"):
            ServingJobConfig.from_flat({"tenancy": "lenet"})

    def test_label(self):
        assert tiny_serving().label() == "4x4 serving uniform+hotspot O0"


class TestServingKind:
    def test_validate_rejects_model_fields(self):
        config = tiny_serving()
        with pytest.raises(ValueError, match="no top-level DNN model"):
            JobSpec(kind="serving", model="lenet", config=config)
        with pytest.raises(ValueError, match="model_seed"):
            JobSpec(kind="serving", config=config, model_seed=9)
        with pytest.raises(ValueError, match="ServingJobConfig"):
            JobSpec(kind="serving", config=tiny_accel())

    def test_spec_rejects_workload_fields(self):
        with pytest.raises(ValueError, match="serving sweeps take no"):
            SweepSpec(
                name="s", kind="serving", model="darknet",
                axes={"tenants": ["uniform"]},
            )
        with pytest.raises(ValueError, match="serving sweeps take no"):
            SweepSpec(
                name="s", kind="serving", image_seed=99,
                axes={"tenants": ["uniform"]},
            )

    def test_sweep_expansion_and_derived_seeds(self):
        spec = SweepSpec(
            name="s",
            kind="serving",
            base={"n_requests": 1, "packets_per_request": 2,
                  "flits_per_packet": 2},
            axes={
                "mesh": ["4x4:2"],
                "tenants": ["uniform", "uniform+hotspot"],
                "background_rate": [0.01, 0.05],
            },
        )
        jobs = spec.expand()
        assert len(jobs) == 4
        seeds = {job.config.serving.seed for job in jobs}
        assert len(seeds) == 4  # every point gets its own derived seed
        assert all(job.config.noc.width == 4 for job in jobs)
        assert all(job.config.serving.n_mcs == 2 for job in jobs)
        assert len({job.job_id for job in jobs}) == 4

    def test_execute_record(self):
        job = JobSpec(kind="serving", config=tiny_serving())
        result = job_kind("serving").execute(job)
        assert result["requests_arrived"] == 4
        assert result["requests_completed"] == 4
        assert len(result["tenants"]) == 2
        assert (
            sum(t["bit_transitions"] for t in result["tenants"])
            == result["total_bit_transitions"]
        )
        assert result["p99_packet_latency"] >= result["p50_packet_latency"]
        assert result["metrics"]["serving.tenants"] == 2

    def test_labels_and_summary(self):
        kind = job_kind("serving")
        job = JobSpec(kind="serving", config=tiny_serving())
        assert kind.job_label(job) == (
            "serving 4x4 serving uniform+hotspot O0"
        )
        record = {"config": tiny_serving().to_dict()}
        assert kind.record_label(record) == (
            "serving 4x4 uniform+hotspot O0 bg0.05"
        )
        summary = kind.result_summary(kind.execute(job))
        assert "BTs" in summary and "p99 latency" in summary
        assert "4/4 requests" in summary

    def test_serving_campaign_caches(self, tmp_path):
        spec = SweepSpec(
            name="svc",
            kind="serving",
            base={"n_requests": 1, "packets_per_request": 2,
                  "flits_per_packet": 2},
            axes={"mesh": ["4x4:2"], "tenants": ["uniform"],
                  "ordering": ["O0"]},
        )
        from repro.experiments.cache import ResultCache

        runner = CampaignRunner(
            cache=ResultCache(tmp_path / "cache"), workers=1
        )
        first = runner.run(spec)
        second = runner.run(spec)
        assert first.records[0]["cached"] is False
        assert second.records[0]["cached"] is True
        assert (
            first.records[0]["result"]["total_bit_transitions"]
            == second.records[0]["result"]["total_bit_transitions"]
        )
