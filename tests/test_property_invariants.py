"""Cross-module property tests: the invariants that make the system sound.

These tie layers together: ordering never changes transmitted value
multisets, flitisation round-trips under arbitrary geometry, the
Eq. (3) model agrees with bit-exact measurement, and the NoC conserves
packets under randomized structural configurations.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.flitize import TaskCodec
from repro.analysis.expectation import expected_flit_transitions
from repro.bits.popcount import popcount
from repro.bits.transitions import transitions_between
from repro.experiments.cache import ResultCache
from repro.experiments.kinds import SyntheticJobConfig
from repro.experiments.spec import JobSpec, SweepSpec
from repro.noc.flit import make_packet
from repro.noc.network import Network, NoCConfig
from repro.noc.traffic import SyntheticTrafficConfig
from repro.ordering.strategies import (
    FillOrder,
    OrderingMethod,
    apply_method,
)

words = st.lists(
    st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=40
)


class TestOrderingInvariants:
    @given(words, st.sampled_from(list(OrderingMethod)))
    def test_value_multisets_preserved(self, weights, method):
        """Ordering is a permutation: nothing is created or lost."""
        inputs = [w ^ 0xA5A5A5A5 for w in weights]
        ordered = apply_method(method, inputs, weights)
        assert sorted(ordered.inputs) == sorted(inputs)
        assert sorted(ordered.weights) == sorted(weights)

    @given(words)
    def test_ordering_is_idempotent(self, weights):
        """Ordering an already-ordered sequence changes nothing."""
        inputs = list(weights)
        once = apply_method(OrderingMethod.SEPARATED, inputs, weights)
        twice = apply_method(
            OrderingMethod.SEPARATED, list(once.inputs), list(once.weights)
        )
        assert twice.inputs == once.inputs
        assert twice.weights == once.weights

    @given(
        st.lists(
            st.integers(min_value=0, max_value=2**8 - 1),
            min_size=2,
            max_size=16,
        ).filter(lambda xs: len(xs) % 2 == 0)
    )
    def test_interleaving_never_increases_expected_bt(self, counts_pool):
        """Eq. (3): the count-based split beats any random split."""
        counts = [popcount(v) for v in counts_pool]
        n = len(counts) // 2
        rng = np.random.default_rng(sum(counts))
        perm = rng.permutation(len(counts))
        random_x = np.array([counts[i] for i in perm[:n]])
        random_y = np.array([counts[i] for i in perm[n:]])
        ordered = sorted(counts, reverse=True)
        best_x = np.array(ordered[0::2])
        best_y = np.array(ordered[1::2])
        assert expected_flit_transitions(
            best_x, best_y, width=8
        ) <= expected_flit_transitions(random_x, random_y, width=8) + 1e-9


class TestCodecGeometryFuzz:
    @settings(deadline=None, max_examples=30)
    @given(
        st.integers(min_value=1, max_value=60),
        st.sampled_from([4, 8, 16, 32]),
        st.sampled_from([8, 16, 32]),
        st.sampled_from(list(OrderingMethod)),
        st.sampled_from(list(FillOrder)),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_round_trip_any_geometry(
        self, n_pairs, values_per_flit, word_width, method, fill, seed
    ):
        """Encode/decode recovers original pairs for every geometry."""
        rng = np.random.default_rng(seed)
        mask = (1 << word_width) - 1
        inputs = [int(v) & mask for v in rng.integers(0, 2**32, n_pairs)]
        weights = [int(v) & mask for v in rng.integers(0, 2**32, n_pairs)]
        bias = int(rng.integers(0, 2**word_width))
        codec = TaskCodec(values_per_flit, word_width)
        encoded = codec.encode(inputs, weights, bias, method, fill)
        decoded = codec.decode(encoded)
        assert decoded.bias == bias
        assert decoded.original_pairs() == list(zip(inputs, weights))

    @settings(deadline=None, max_examples=20)
    @given(
        st.integers(min_value=1, max_value=60),
        st.sampled_from(list(OrderingMethod)),
    )
    def test_flit_count_independent_of_method(self, n_pairs, method):
        """Ordering never changes the packet length (no hidden cost)."""
        codec = TaskCodec(16, 8)
        inputs = [1] * n_pairs
        weights = [2] * n_pairs
        enc = codec.encode(inputs, weights, 3, method)
        assert enc.n_data_flits == codec.data_flit_count(n_pairs)


class TestNoCConservation:
    @settings(deadline=None, max_examples=10)
    @given(
        st.integers(min_value=1, max_value=4),  # n_vcs
        st.integers(min_value=1, max_value=4),  # vc_depth
        st.integers(min_value=1, max_value=3),  # link_latency
        st.integers(min_value=0, max_value=1000),  # seed
    )
    def test_random_structure_delivers_everything(
        self, n_vcs, vc_depth, link_latency, seed
    ):
        """Any structural configuration conserves and delivers packets."""
        config = NoCConfig(
            width=3,
            height=3,
            n_vcs=n_vcs,
            vc_depth=vc_depth,
            link_latency=link_latency,
            link_width=32,
        )
        net = Network(config)
        rng = np.random.default_rng(seed)
        n_packets = int(rng.integers(1, 10))
        for _ in range(n_packets):
            src = int(rng.integers(0, 9))
            dst = int(rng.integers(0, 9))
            length = int(rng.integers(1, 6))
            payloads = [int(v) for v in rng.integers(0, 2**31, length)]
            net.send_packet(make_packet(src, dst, payloads, 32))
        stats = net.run_until_drained(max_cycles=50_000)
        assert stats.packets_delivered == n_packets

    def test_bt_symmetric_in_payload_swap(self):
        """BT(a, b) == BT(b, a) end to end through a link."""
        for a, b in [(0x12, 0xFE), (0, 2**31), (7, 7)]:
            forward = transitions_between(a, b)
            backward = transitions_between(b, a)
            assert forward == backward


def _tiny_accel_job(**overrides) -> JobSpec:
    kwargs = dict(
        model="lenet",
        config=AcceleratorConfig(
            width=2, height=2, n_mcs=1, max_tasks_per_layer=1
        ),
    )
    kwargs.update(overrides)
    return JobSpec(**kwargs)


class TestCacheKeyInvariants:
    """Cache keys are pure functions of job identity + code version."""

    @given(st.permutations(["model", "model_seed", "image_seed",
                            "max_cycles_per_layer", "config", "kind"]))
    def test_key_independent_of_dict_key_order(self, key_order):
        """Rebuilding a job from a reordered payload keeps its key."""
        job = _tiny_accel_job()
        payload = job.to_dict()
        reordered = {k: payload[k] for k in key_order}
        rebuilt = JobSpec.from_dict(reordered)
        cache = ResultCache("/nonexistent", version_tag="t")
        assert cache.key_for(rebuilt) == cache.key_for(job)
        assert rebuilt.job_id == job.job_id

    def test_key_stable_across_process_restarts(self):
        """The pinned digest below was computed in a separate process.

        canonical_json sorts keys and never uses str hashes, so the
        key must not depend on PYTHONHASHSEED or interpreter session.
        A failure here means every existing on-disk cache silently
        invalidates — bump deliberately, not accidentally.
        """
        cache = ResultCache("/nonexistent", version_tag="vtest")
        # Bumped deliberately in PR 5: AcceleratorConfig grew the
        # `codec` field (batch/scalar task codec), which changes every
        # config's canonical dict and therefore every cache key.
        assert cache.key_for(_tiny_accel_job()) == (
            "3c449aec2a56881112f529ecb46c662b"
            "23f26dbefa741ff6b26bc90f587f00f0"
        )

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_version_tag_always_changes_key(self, seed):
        job = _tiny_accel_job(image_seed=seed)
        a = ResultCache("/nonexistent", version_tag="a")
        b = ResultCache("/nonexistent", version_tag="b")
        assert a.key_for(job) != b.key_for(job)


class TestSweepSeedInvariants:
    """Derived per-job seeds are deterministic and collision-free."""

    @settings(deadline=None, max_examples=25)
    @given(
        st.integers(min_value=0, max_value=2**31),
        st.lists(
            st.sampled_from(["O0", "O1", "O2"]),
            min_size=1, max_size=3, unique=True,
        ),
    )
    def test_seeds_deterministic_and_unique_within_sweep(
        self, campaign_seed, orderings
    ):
        spec = SweepSpec(
            base={"max_tasks_per_layer": 1, "n_mcs": 1},
            axes={"mesh": ["2x2:1", "3x3:1"], "ordering": orderings},
            seed=campaign_seed,
        )
        first = [j.config.seed for j in spec.expand()]
        second = [j.config.seed for j in spec.expand()]
        assert first == second  # deterministic across expansions
        assert len(set(first)) == len(first)  # collision-free in-sweep

    def test_batch_n_images_axis_gets_distinct_seeds(self):
        """Jobs differing only in batch size must not share a seed."""
        spec = SweepSpec(
            kind="batch",
            base={"max_tasks_per_layer": 1, "n_mcs": 1},
            axes={"n_images": [1, 2, 4]},
        )
        seeds = [j.config.seed for j in spec.expand()]
        assert len(set(seeds)) == 3

    @settings(deadline=None, max_examples=25)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_synthetic_seeds_deterministic_and_unique(self, campaign_seed):
        spec = SweepSpec(
            kind="synthetic",
            base={"n_packets": 5},
            axes={
                "mesh": ["2x2", "3x3"],
                "pattern": ["uniform", "complement"],
            },
            seed=campaign_seed,
        )
        seeds = [j.config.traffic.seed for j in spec.expand()]
        assert seeds == [j.config.traffic.seed for j in spec.expand()]
        assert len(set(seeds)) == len(seeds)


class TestJobSpecRoundTrip:
    """from_dict(to_dict()) is the identity for every job kind."""

    @settings(deadline=None, max_examples=30)
    @given(
        st.sampled_from(["lenet", "darknet", "trained_lenet"]),
        st.sampled_from(["float32", "fixed8"]),
        st.sampled_from(["O0", "O1", "O2"]),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_model_kind(self, model, fmt, ordering, seed):
        job = JobSpec(
            model=model,
            config=AcceleratorConfig(
                data_format=fmt,
                ordering=OrderingMethod.from_name(ordering),
                seed=seed,
            ),
            model_seed=seed % 97,
        )
        assert JobSpec.from_dict(job.to_dict()) == job

    @settings(deadline=None, max_examples=30)
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_batch_kind(self, n_images, seed):
        job = JobSpec(
            model="lenet",
            config=AcceleratorConfig(seed=seed),
            kind="batch",
            n_images=n_images,
        )
        assert JobSpec.from_dict(job.to_dict()) == job

    @settings(deadline=None, max_examples=30)
    @given(
        st.sampled_from(["uniform", "transpose", "complement", "hotspot"]),
        st.sampled_from(["random", "zero", "counter"]),
        st.integers(min_value=1, max_value=1000),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_synthetic_kind(self, pattern, payload, n_packets, seed):
        job = JobSpec(
            kind="synthetic",
            config=SyntheticJobConfig.from_flat({
                "pattern": pattern,
                "payload": payload,
                "n_packets": n_packets,
                "seed": seed,
                "width": 4,
                "height": 4,
                "link_width": 64,
            }),
        )
        rebuilt = JobSpec.from_dict(job.to_dict())
        assert rebuilt == job
        assert isinstance(rebuilt.config.traffic, SyntheticTrafficConfig)
