"""Tests for repro.noc.routing and repro.noc.topology."""

from __future__ import annotations

import pytest

from repro.noc.routing import OPPOSITE, Port, routing_by_name, xy_route, yx_route
from repro.noc.topology import (
    coordinates,
    inter_router_link_count,
    manhattan_distance,
    mesh_neighbors,
    node_id,
)


class TestXYRouting:
    def test_at_destination(self):
        assert xy_route(5, 5, 4) is Port.LOCAL

    def test_x_first(self):
        # Node 0 -> node 5 in a 4-wide mesh: east before south.
        assert xy_route(0, 5, 4) is Port.EAST

    def test_then_y(self):
        # Same column: go south.
        assert xy_route(1, 5, 4) is Port.SOUTH

    def test_west_and_north(self):
        assert xy_route(5, 4, 4) is Port.WEST
        assert xy_route(5, 1, 4) is Port.NORTH

    def test_full_route_walk(self):
        # Follow the route hop by hop; it must terminate at dst with
        # exactly the Manhattan distance number of hops.
        width = 4
        src, dst = 12, 3
        node = src
        hops = 0
        while True:
            port = xy_route(node, dst, width)
            if port is Port.LOCAL:
                break
            x, y = coordinates(node, width)
            if port is Port.EAST:
                x += 1
            elif port is Port.WEST:
                x -= 1
            elif port is Port.SOUTH:
                y += 1
            else:
                y -= 1
            node = node_id(x, y, width)
            hops += 1
            assert hops <= 10
        assert node == dst
        assert hops == manhattan_distance(src, dst, width)

    def test_yx_differs_on_diagonal(self):
        assert xy_route(0, 5, 4) is Port.EAST
        assert yx_route(0, 5, 4) is Port.SOUTH

    def test_routing_by_name(self):
        assert routing_by_name("xy") is xy_route
        assert routing_by_name("yx") is yx_route
        with pytest.raises(ValueError):
            routing_by_name("adaptive")


class TestOpposite:
    def test_involution(self):
        for port, opp in OPPOSITE.items():
            assert OPPOSITE[opp] is port


class TestTopology:
    def test_node_id_round_trip(self):
        for node in range(12):
            x, y = coordinates(node, 4)
            assert node_id(x, y, 4) == node

    def test_node_id_bounds(self):
        with pytest.raises(ValueError):
            node_id(4, 0, 4)

    def test_mesh_neighbors_corner(self):
        neigh = mesh_neighbors(4, 4)
        assert set(neigh[0]) == {Port.EAST, Port.SOUTH}
        assert neigh[0][Port.EAST] == 1
        assert neigh[0][Port.SOUTH] == 4

    def test_mesh_neighbors_center(self):
        neigh = mesh_neighbors(4, 4)
        assert set(neigh[5]) == {
            Port.NORTH,
            Port.EAST,
            Port.SOUTH,
            Port.WEST,
        }

    def test_neighbor_symmetry(self):
        neigh = mesh_neighbors(5, 3)
        for node, links in neigh.items():
            for port, other in links.items():
                assert neigh[other][OPPOSITE[port]] == node

    def test_manhattan(self):
        assert manhattan_distance(0, 15, 4) == 6
        assert manhattan_distance(7, 7, 4) == 0

    def test_link_count_8x8(self):
        # The paper's Sec. V-C example: 112 links in an 8x8 NoC.
        assert inter_router_link_count(8, 8) == 112

    def test_link_count_4x4(self):
        assert inter_router_link_count(4, 4) == 24

    def test_invalid_mesh(self):
        with pytest.raises(ValueError):
            mesh_neighbors(0, 4)
