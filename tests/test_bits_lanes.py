"""Tests for repro.bits.lanes (vectorised lane pack/unpack kernels).

The kernels are the numpy fast path under the batch codec and
``unpack_words``; every assertion here compares against the scalar
:mod:`repro.bits.packing` reference, which is the bit-exact contract.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits.lanes import (
    lane_dtype,
    lane_fast_path,
    pack_lane_matrix,
    payloads_to_bytes,
    unpack_lane_matrix,
)
from repro.bits.packing import pack_words, unpack_words
from repro.bits.transitions import stream_transitions, stream_transitions_bytes

FAST_WIDTHS = (8, 16, 24, 32, 40, 48, 56, 64)


class TestFastPath:
    def test_byte_aligned_widths_up_to_64(self):
        for width in FAST_WIDTHS:
            assert lane_fast_path(width)

    def test_unsupported_widths(self):
        for width in (1, 5, 12, 33, 72, 128):
            assert not lane_fast_path(width)

    def test_lane_dtype_is_minimal(self):
        assert lane_dtype(8) == np.uint8
        assert lane_dtype(24) == np.uint32
        assert lane_dtype(64) == np.uint64
        with pytest.raises(ValueError):
            lane_dtype(65)


class TestPackLaneMatrix:
    @pytest.mark.parametrize("width", FAST_WIDTHS)
    def test_matches_scalar_pack_words(self, width):
        rng = np.random.default_rng(width)
        matrix = rng.integers(
            0, 1 << min(width, 63), size=(9, 7), dtype=np.uint64
        )
        assert pack_lane_matrix(matrix, width) == [
            pack_words(row.tolist(), width) for row in matrix
        ]

    def test_round_trip(self):
        rng = np.random.default_rng(3)
        for width in FAST_WIDTHS:
            matrix = rng.integers(
                0, 1 << min(width, 63), size=(5, 4), dtype=np.uint64
            )
            payloads = pack_lane_matrix(matrix, width)
            back = unpack_lane_matrix(payloads, width, 4)
            assert back.tolist() == matrix.tolist()

    def test_rejects_out_of_range_words(self):
        with pytest.raises(ValueError, match="does not fit"):
            pack_lane_matrix(np.array([[256]]), 8)
        with pytest.raises(ValueError, match="does not fit"):
            pack_lane_matrix(np.array([[-1]]), 8)

    def test_rejects_unsupported_width(self):
        with pytest.raises(ValueError, match="no vectorised lane kernel"):
            pack_lane_matrix(np.zeros((1, 1), dtype=np.uint8), 12)

    def test_rejects_non_integer_matrix(self):
        with pytest.raises(ValueError, match="integer lane words"):
            pack_lane_matrix(np.zeros((2, 2)), 8)

    def test_empty_rows_pack_to_zero(self):
        assert pack_lane_matrix(np.zeros((3, 0), dtype=np.uint8), 8) == [
            0,
            0,
            0,
        ]


class TestUnpackLaneMatrix:
    def test_ignores_bits_beyond_count(self):
        payload = pack_words([1, 2, 3], 16)
        assert unpack_lane_matrix([payload], 16, 2).tolist() == [[1, 2]]

    @pytest.mark.parametrize("width", FAST_WIDTHS)
    def test_matches_scalar_unpack_words(self, width):
        rng = np.random.default_rng(width + 1)
        rows = rng.integers(
            0, 1 << min(width, 63), size=(6, 5), dtype=np.uint64
        )
        payloads = [pack_words(row.tolist(), width) for row in rows]
        got = unpack_lane_matrix(payloads, width, 5)
        for payload, row in zip(payloads, got):
            assert row.tolist() == unpack_words(payload, width, 5)

    def test_rejects_unsupported_width(self):
        with pytest.raises(ValueError, match="no vectorised lane kernel"):
            unpack_lane_matrix([0], 12, 1)


class TestPayloadsToBytes:
    @pytest.mark.parametrize("byte_order", ["little", "big"])
    def test_round_trips_through_int_from_bytes(self, byte_order):
        rng = np.random.default_rng(7)
        payloads = [
            int.from_bytes(rng.bytes(16), "little") for _ in range(20)
        ]
        matrix = payloads_to_bytes(payloads, 16, byte_order)
        assert matrix.shape == (20, 16)
        for payload, row in zip(payloads, matrix):
            assert int.from_bytes(row.tobytes(), byte_order) == payload

    def test_feeds_vectorised_stream_scorer(self):
        rng = np.random.default_rng(11)
        payloads = [
            int.from_bytes(rng.bytes(64), "little") for _ in range(50)
        ]
        assert stream_transitions_bytes(
            payloads_to_bytes(payloads, 64)
        ) == stream_transitions(payloads)

    def test_scorer_first_row_uncharged(self):
        assert stream_transitions_bytes(payloads_to_bytes([255], 1)) == 0
        assert stream_transitions_bytes(payloads_to_bytes([0, 255], 1)) == 8


class TestKernelProperties:
    @settings(deadline=None, max_examples=60)
    @given(
        st.sampled_from(FAST_WIDTHS),
        st.integers(min_value=1, max_value=6),
        st.lists(
            st.integers(min_value=0, max_value=2**64 - 1),
            min_size=1,
            max_size=24,
        ),
        st.data(),
    )
    def test_pack_unpack_equals_scalar(self, width, lanes, seeds, data):
        n_rows = len(seeds)
        matrix = np.array(
            [
                [(s + 31 * c) % (1 << min(width, 63)) for c in range(lanes)]
                for s in seeds
            ],
            dtype=np.uint64,
        )
        payloads = pack_lane_matrix(matrix, width)
        assert payloads == [pack_words(r.tolist(), width) for r in matrix]
        back = unpack_lane_matrix(payloads, width, lanes)
        assert back.tolist() == matrix.tolist()
        assert back.shape == (n_rows, lanes)
