"""The BENCH regression gate: compare_bench wall-time diffs."""

from __future__ import annotations

import pytest

from repro.perf import compare_bench


def payload(walls: dict[str, float], core="event", smoke=True):
    entries = [
        {"name": name, "wall_seconds": wall} for name, wall in walls.items()
    ]
    return {
        "schema": 1,
        "core": core,
        "smoke": smoke,
        "workloads": entries,
        "totals": {"wall_seconds": sum(walls.values())},
    }


class TestCompareBench:
    def test_identical_payloads_pass(self):
        base = payload({"a": 1.0, "b": 2.0})
        assert compare_bench(base, payload({"a": 1.0, "b": 2.0})) == []

    def test_speedup_and_noise_pass(self):
        base = payload({"a": 1.0, "b": 2.0})
        fresh = payload({"a": 0.5, "b": 2.4})  # -50% and +20%
        assert compare_bench(base, fresh, max_regression_pct=25.0) == []

    def test_regression_beyond_threshold_fails(self):
        base = payload({"a": 1.0, "b": 2.0})
        fresh = payload({"a": 1.0, "b": 2.6})  # +30%
        failures = compare_bench(base, fresh, max_regression_pct=25.0)
        assert len(failures) == 1
        assert "b:" in failures[0]
        assert "+30%" in failures[0]

    def test_total_regression_reported(self):
        base = payload({"a": 1.0, "b": 1.0})
        fresh = payload({"a": 1.4, "b": 1.4})  # +40% each and in total
        failures = compare_bench(base, fresh, max_regression_pct=25.0)
        assert any(f.startswith("totals:") for f in failures)

    def test_threshold_is_configurable(self):
        base = payload({"a": 1.0})
        fresh = payload({"a": 1.3})
        assert compare_bench(base, fresh, max_regression_pct=50.0) == []
        assert compare_bench(base, fresh, max_regression_pct=10.0)

    def test_mismatched_grids_fail_not_pass(self):
        base = payload({"a": 1.0})
        fresh = payload({"a": 1.0, "b": 1.0})
        failures = compare_bench(base, fresh)
        assert any("workload sets differ" in f for f in failures)

    def test_mismatched_core_or_smoke_fail(self):
        base = payload({"a": 1.0})
        assert any(
            "core" in f for f in compare_bench(base, payload({"a": 1.0},
                                                             core="stepped"))
        )
        assert any(
            "smoke" in f for f in compare_bench(base, payload({"a": 1.0},
                                                              smoke=False))
        )

    def test_millisecond_noise_below_floor_ignored(self):
        # +30% on a 10ms workload is timer jitter, not a regression.
        base = payload({"a": 0.010})
        fresh = payload({"a": 0.013})
        assert compare_bench(base, fresh, max_regression_pct=25.0) == []
        # ... unless the caller lowers the absolute floor.
        assert compare_bench(
            base, fresh, max_regression_pct=25.0, min_delta_seconds=0.001
        )

    def test_zero_baseline_wall_never_divides(self):
        base = payload({"a": 0.0})
        assert compare_bench(base, payload({"a": 5.0})) == []

    def test_schema_mismatch_fails(self):
        base = payload({"a": 1.0})
        fresh = {**payload({"a": 1.0}), "schema": 2}
        assert any("schema" in f for f in compare_bench(base, fresh))

    def test_malformed_entries_fail_not_crash(self):
        """A hand-edited / foreign-schema snapshot must report, not
        raise KeyError."""
        base = payload({"a": 1.0})
        broken = dict(base)
        broken["workloads"] = [{"name": "a"}]  # no wall_seconds
        failures = compare_bench(broken, payload({"a": 1.0}))
        assert any("malformed workload entry" in f for f in failures)
        nameless = dict(base)
        nameless["workloads"] = [{"wall_seconds": 1.0}]
        failures = compare_bench(nameless, payload({"a": 1.0}))
        assert any("malformed workload entry" in f for f in failures)
        # Malformed totals are reported too.
        bad_totals = payload({"a": 1.0})
        bad_totals["totals"] = {}
        failures = compare_bench(bad_totals, payload({"a": 1.0}))
        assert any("totals" in f for f in failures)


class TestBenchMeta:
    def test_meta_keys_and_values(self):
        from repro.perf import bench_meta

        meta = bench_meta()
        assert set(meta) == {
            "git_commit", "python", "numpy", "platform", "machine",
        }
        assert meta["python"].count(".") == 2
        assert meta["numpy"]
        # This repo is a git checkout, so the commit hash resolves.
        assert meta["git_commit"] is None or len(meta["git_commit"]) == 40

    def test_regressions_carry_provenance_notes(self):
        base = payload({"w": 1.0})
        base["meta"] = {"git_commit": "abc123", "python": "3.11.7"}
        slow = payload({"w": 2.0})
        slow["meta"] = {"git_commit": "def456", "python": None}
        failures = compare_bench(base, slow)
        notes = [f for f in failures if f.startswith("note:")]
        assert len(notes) == 2
        assert "note: baseline meta: git_commit=abc123, python=3.11.7" in notes
        # None values (e.g. no git checkout) are left out of the note.
        assert "note: fresh meta: git_commit=def456" in notes

    def test_meta_never_triggers_or_notes_clean_compares(self):
        base = payload({"w": 1.0})
        base["meta"] = {"git_commit": "abc123"}
        fresh = payload({"w": 1.0})
        fresh["meta"] = {"git_commit": "def456"}
        assert compare_bench(base, fresh) == []

    def test_meta_less_payloads_fail_without_notes(self):
        failures = compare_bench(payload({"w": 1.0}), payload({"w": 2.0}))
        assert failures
        assert not any(f.startswith("note:") for f in failures)
