"""Tests for repro.workloads.traces (capture, persistence, re-analysis)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.simulator import AcceleratorSimulator
from repro.noc.flit import make_packet
from repro.noc.network import Network, NoCConfig
from repro.ordering.strategies import OrderingMethod
from repro.workloads.traces import (
    TraceCollector,
    TrafficTrace,
    reencode_transitions,
)


def traced_network() -> tuple[Network, TrafficTrace]:
    net = Network(NoCConfig(width=4, height=4, link_width=64))
    net.trace_collector = TraceCollector()
    for src in range(6):
        net.send_packet(make_packet(src, 15, [src * 101, src ^ 0xFF], 64))
    net.run_until_drained()
    return net, net.trace_collector.finish(64)


class TestCapture:
    def test_trace_matches_live_recorders(self):
        net, trace = traced_network()
        assert trace.total_transitions() == net.stats.total_bit_transitions
        assert trace.total_flit_traversals() == net.stats.flit_hops

    def test_per_link_matches_ledger(self):
        net, trace = traced_network()
        assert trace.per_link_transitions() == net.ledger.per_link()

    def test_cycles_recorded_monotone(self):
        _, trace = traced_network()
        for name, cycles in trace.cycles.items():
            assert list(cycles) == sorted(cycles)
            assert len(cycles) == len(trace.links[name])


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        _, trace = traced_network()
        path = tmp_path / "run.trace.json"
        trace.save(path)
        loaded = TrafficTrace.load(path)
        assert loaded.link_width == trace.link_width
        assert loaded.links == trace.links
        assert loaded.cycles == trace.cycles

    def test_wide_payloads_survive(self, tmp_path):
        trace = TrafficTrace(
            link_width=512,
            links={"R0.EAST": (2**511 | 1, 0, 2**300)},
        )
        path = tmp_path / "wide.json"
        trace.save(path)
        assert TrafficTrace.load(path).links["R0.EAST"] == (
            2**511 | 1,
            0,
            2**300,
        )

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "link_width": 8, "links": {}}')
        with pytest.raises(ValueError):
            TrafficTrace.load(path)


class TestReencoding:
    def test_none_is_identity(self):
        _, trace = traced_network()
        assert reencode_transitions(trace, "none") == (
            trace.total_transitions()
        )

    def test_bus_invert_never_much_worse(self):
        _, trace = traced_network()
        plain = trace.total_transitions()
        coded = reencode_transitions(trace, "bus_invert")
        # Bus-invert bounds payload transitions and pays <= 1 line
        # transition per flit.
        assert coded <= plain + trace.total_flit_traversals()

    def test_unknown_coding(self):
        _, trace = traced_network()
        with pytest.raises(ValueError):
            reencode_transitions(trace, "gray")


class TestAcceleratorIntegration:
    def test_trace_through_accelerator(self, small_lenet, digit_image):
        config = AcceleratorConfig(max_tasks_per_layer=3, seed=4)
        sim = AcceleratorSimulator(config, small_lenet, digit_image)
        collector = TraceCollector()
        result = sim.run(trace_collector=collector)
        trace = collector.finish(config.link_width)
        assert trace.total_transitions() == result.total_bit_transitions
        assert result.all_verified
