"""Tests for repro.workloads.traces (capture, persistence, replay).

The persistence section is property-based: arbitrary flit sequences
must survive write -> read byte-identically across format versions,
byte orders, and compression settings, and truncated or corrupt files
of any flavour must fail with a clean :class:`ValueError`.
"""

from __future__ import annotations

import gzip
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.simulator import AcceleratorSimulator
from repro.noc.flit import make_packet
from repro.noc.network import CORES, Network, NoCConfig, network_core
from repro.noc.recorder import TraceRecorder
from repro.ordering.strategies import OrderingMethod
from repro.workloads.traces import (
    PacketEvent,
    TraceCollector,
    TrafficTrace,
    reencode_per_link,
    reencode_transitions,
    replay_through_network,
    trace_digest,
)


def traced_network() -> tuple[Network, TrafficTrace]:
    net = Network(NoCConfig(width=4, height=4, link_width=64))
    net.trace_collector = TraceCollector()
    for src in range(6):
        net.send_packet(make_packet(src, 15, [src * 101, src ^ 0xFF], 64))
    net.run_until_drained()
    return net, net.trace_collector.finish(64)


class TestStreamScoring:
    """The per-link BT scorer's vectorised narrow-link fast path."""

    def test_narrow_link_matches_scalar_loop(self):
        from repro.bits.transitions import stream_transitions

        rng = np.random.default_rng(0)
        payloads = tuple(
            int(x) for x in rng.integers(0, 2**64, 200, dtype=np.uint64)
        )
        trace = TrafficTrace(link_width=64, links={"L": payloads})
        assert trace.per_link_transitions()["L"] == stream_transitions(
            payloads
        )

    def test_header_bits_beyond_link_width_fall_back(self):
        # include_header_bits records wire images wider than the link;
        # the uint64 fast path must fall back, not overflow.
        payloads = (2**64 + 1, 3, 2**70)
        trace = TrafficTrace(link_width=64, links={"L": payloads})
        assert trace.per_link_transitions()["L"] == (
            (payloads[0] ^ payloads[1]).bit_count()
            + (payloads[1] ^ payloads[2]).bit_count()
        )


class TestCapture:
    def test_trace_matches_live_recorders(self):
        net, trace = traced_network()
        assert trace.total_transitions() == net.stats.total_bit_transitions
        assert trace.total_flit_traversals() == net.stats.flit_hops

    def test_per_link_matches_ledger(self):
        net, trace = traced_network()
        assert trace.per_link_transitions() == net.ledger.per_link()

    def test_cycles_recorded_monotone(self):
        _, trace = traced_network()
        for name, cycles in trace.cycles.items():
            assert list(cycles) == sorted(cycles)
            assert len(cycles) == len(trace.links[name])

    def test_columns_are_array_backed(self):
        # <=64-bit captures must land on WordArray's numpy path so
        # offline scoring never re-converts per call.
        import numpy as np

        from repro.bits.wordarray import WordArray

        _, trace = traced_network()
        for name, payloads in trace.links.items():
            assert isinstance(payloads, WordArray)
            assert payloads.array is not None
            assert payloads.array.dtype == np.uint64
            cycles = trace.cycles[name]
            assert isinstance(cycles, WordArray)
            assert cycles.array is not None
            assert cycles.array.dtype == np.int64

    def test_wide_links_fall_back_to_tuple_backing(self):
        trace = TrafficTrace(
            link_width=96, links={"L": (1 << 80, 5)}, cycles={"L": (0, 1)}
        )
        assert trace.links["L"].array is None
        assert trace.links["L"] == (1 << 80, 5)
        # Cycles still fit int64 and stay array-backed.
        assert trace.cycles["L"].array is not None
        assert trace.per_link_transitions()["L"] == (
            (1 << 80) ^ 5
        ).bit_count()


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        _, trace = traced_network()
        path = tmp_path / "run.trace.json"
        trace.save(path)
        loaded = TrafficTrace.load(path)
        assert loaded.link_width == trace.link_width
        assert loaded.links == trace.links
        assert loaded.cycles == trace.cycles

    def test_wide_payloads_survive(self, tmp_path):
        trace = TrafficTrace(
            link_width=512,
            links={"R0.EAST": (2**511 | 1, 0, 2**300)},
        )
        path = tmp_path / "wide.json"
        trace.save(path)
        assert TrafficTrace.load(path).links["R0.EAST"] == (
            2**511 | 1,
            0,
            2**300,
        )

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "link_width": 8, "links": {}}')
        with pytest.raises(ValueError):
            TrafficTrace.load(path)


def recorded_network() -> tuple[Network, TrafficTrace]:
    """A drained network captured with the full-fidelity recorder."""
    net = Network(NoCConfig(width=4, height=4, link_width=64))
    net.trace_collector = TraceRecorder()
    for src in range(6):
        net.send_packet(
            make_packet(src, 15, [src * 101, src ^ 0xFF, 7 * src + 2], 64)
        )
    net.run_until_drained()
    return net, net.trace_collector.finish(net.config)


class TestTraceRecorder:
    def test_capture_matches_live_recorders(self):
        net, trace = recorded_network()
        assert trace.total_transitions() == net.stats.total_bit_transitions
        assert trace.per_link_transitions() == net.ledger.per_link()

    def test_parallel_streams_aligned(self):
        _, trace = recorded_network()
        for name, payloads in trace.links.items():
            assert len(trace.cycles[name]) == len(payloads)
            assert len(trace.vcs[name]) == len(payloads)
            assert len(trace.packet_ids[name]) == len(payloads)
            assert all(pid >= 0 for pid in trace.packet_ids[name])

    def test_injection_schedule_captured(self):
        net, trace = recorded_network()
        assert trace.is_replayable
        assert len(trace.packets) == 6
        assert [p.src for p in trace.packets] == list(range(6))
        assert all(p.dst == 15 for p in trace.packets)
        assert all(len(p.payloads) == 3 for p in trace.packets)
        assert trace.noc == net.config.to_dict()

    def test_plain_width_finish(self):
        """finish() accepts a bare link width for config-less captures."""
        recorder = TraceRecorder()
        recorder.record("R0.EAST", 5, 0, 1)
        trace = recorder.finish(64)
        assert trace.link_width == 64
        assert trace.noc is None and not trace.is_replayable


# -- property-based persistence round trips ---------------------------


@st.composite
def arbitrary_traces(draw, replayable: bool = False):
    """Traces over arbitrary flit sequences (wide ints included)."""
    width = draw(st.integers(min_value=1, max_value=160))
    payload = st.integers(min_value=0, max_value=2**width - 1)
    links: dict[str, tuple[int, ...]] = {}
    cycles: dict[str, tuple[int, ...]] = {}
    vcs: dict[str, tuple[int, ...]] = {}
    pids: dict[str, tuple[int, ...]] = {}
    for i in range(draw(st.integers(min_value=0, max_value=3))):
        n = draw(st.integers(min_value=0, max_value=8))
        name = f"R{i}.EAST"
        links[name] = tuple(
            draw(st.lists(payload, min_size=n, max_size=n))
        )
        cycles[name] = tuple(range(n))
        if replayable:
            vcs[name] = tuple([0] * n)
            pids[name] = tuple(range(n))
    packets: tuple[PacketEvent, ...] = ()
    noc = None
    if replayable:
        n_pkts = draw(st.integers(min_value=0, max_value=4))
        packets = tuple(
            PacketEvent(
                cycle=j,
                src=draw(st.integers(min_value=0, max_value=8)),
                dst=draw(st.integers(min_value=0, max_value=8)),
                payloads=tuple(
                    draw(st.lists(payload, min_size=1, max_size=3))
                ),
            )
            for j in range(n_pkts)
        )
        noc = NoCConfig(width=3, height=3, link_width=width).to_dict()
    return TrafficTrace(
        link_width=width, links=links, cycles=cycles, vcs=vcs,
        packet_ids=pids, packets=packets, noc=noc,
    )


class TestRoundTripProperties:
    @settings(deadline=None, max_examples=40)
    @given(
        trace=arbitrary_traces(replayable=True),
        byte_order=st.sampled_from(["big", "little"]),
        compress=st.booleans(),
    )
    def test_v2_round_trip_exact(self, tmp_path_factory, trace,
                                 byte_order, compress):
        path = tmp_path_factory.mktemp("rt") / "t.trace"
        trace.save(path, byte_order=byte_order, compress=compress)
        assert TrafficTrace.load(path) == trace

    @settings(deadline=None, max_examples=25)
    @given(trace=arbitrary_traces(), compress=st.booleans())
    def test_v1_round_trip_wire_images(self, tmp_path_factory, trace,
                                       compress):
        """The legacy envelope preserves wire images and cycles."""
        path = tmp_path_factory.mktemp("rt1") / "t.trace.json"
        trace.save(path, version=1, compress=compress)
        loaded = TrafficTrace.load(path)
        assert loaded.link_width == trace.link_width
        assert loaded.links == trace.links
        assert loaded.cycles == trace.cycles

    @settings(deadline=None, max_examples=25)
    @given(trace=arbitrary_traces(replayable=True))
    def test_byte_orders_agree(self, tmp_path_factory, trace):
        """Endianness is an encoding detail, never a semantic one."""
        d = tmp_path_factory.mktemp("bo")
        trace.save(d / "big.gz", byte_order="big")
        trace.save(d / "little.gz", byte_order="little")
        assert (
            TrafficTrace.load(d / "big.gz")
            == TrafficTrace.load(d / "little.gz")
            == trace
        )

    @settings(deadline=None, max_examples=30)
    @given(
        trace=arbitrary_traces(replayable=True),
        fraction=st.floats(min_value=0.05, max_value=0.95),
        compress=st.booleans(),
    )
    def test_truncated_files_fail_cleanly(self, tmp_path_factory, trace,
                                          fraction, compress):
        """A torn write at any offset raises ValueError, nothing else."""
        path = tmp_path_factory.mktemp("tr") / "t.trace"
        trace.save(path, compress=compress)
        blob = path.read_bytes()
        cut = max(1, int(len(blob) * fraction))
        if cut >= len(blob):  # nothing actually truncated
            return
        path.write_bytes(blob[:cut])
        with pytest.raises(ValueError, match="trace"):
            TrafficTrace.load(path)

    def test_unknown_byte_order_rejected(self, tmp_path):
        trace = TrafficTrace(link_width=8, links={"R0.EAST": (1, 2)})
        with pytest.raises(ValueError, match="byte order"):
            trace.save(tmp_path / "t", byte_order="middle")

    def test_unknown_version_rejected_on_save(self, tmp_path):
        trace = TrafficTrace(link_width=8, links={})
        with pytest.raises(ValueError, match="version"):
            trace.save(tmp_path / "t", version=3)

    def test_corrupt_base64_fails_cleanly(self, tmp_path):
        path = tmp_path / "bad.trace"
        doc = {"version": 2, "link_width": 8, "byte_order": "big",
               "links": {"R0.EAST": "!!!not-base64!!!"}, "cycles": {}}
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="trace"):
            TrafficTrace.load(path)

    def test_torn_word_array_fails_cleanly(self, tmp_path):
        import base64

        path = tmp_path / "torn.trace"
        doc = {"version": 2, "link_width": 32, "byte_order": "big",
               "links": {"R0.EAST":
                         base64.b64encode(b"\x01\x02\x03").decode()},
               "cycles": {}}
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="word size"):
            TrafficTrace.load(path)

    def test_header_bit_wire_images_round_trip(self, tmp_path):
        """Wire images wider than link_width (include_header_bits
        captures) must survive v2 persistence — the word size comes
        from the widest image, not from link_width."""
        net = Network(
            NoCConfig(width=3, height=3, link_width=32,
                      include_header_bits=True)
        )
        net.trace_collector = TraceRecorder()
        for src in range(4):
            net.send_packet(make_packet(src, 8, [src * 99, src], 32))
        net.run_until_drained()
        trace = net.trace_collector.finish(net.config)
        assert any(
            p.bit_length() > 32
            for payloads in trace.links.values()
            for p in payloads
        )
        path = tmp_path / "hdr.trace.gz"
        trace.save(path)
        assert TrafficTrace.load(path) == trace

    def test_keyword_only_collector_receives_vc_and_flit(self):
        """record(link, bits, cycle, *, vc=0, flit=None) is a valid
        spelling of the 5-arg protocol — vc/flit must not be dropped."""

        class KwCollector:
            def __init__(self):
                self.vcs = []
                self.pids = []

            def record(self, link_name, bits, cycle, *, vc=0, flit=None):
                self.vcs.append(vc)
                self.pids.append(None if flit is None else flit.packet_id)

        net = Network(NoCConfig(width=2, height=2, link_width=16))
        net.trace_collector = KwCollector()
        net.send_packet(make_packet(0, 3, [7, 9], 16))
        net.run_until_drained()
        assert net.trace_collector.pids
        assert all(pid is not None for pid in net.trace_collector.pids)

    def test_legacy_three_arg_collector_still_works(self):
        """The pre-PR hook protocol — record(link, bits, cycle) — must
        not crash mid-simulation."""

        class LegacyCollector:
            def __init__(self):
                self.calls = []

            def record(self, link_name, bits, cycle):
                self.calls.append((link_name, bits, cycle))

        net = Network(NoCConfig(width=2, height=2, link_width=16))
        net.trace_collector = LegacyCollector()
        net.send_packet(make_packet(0, 3, [7, 9], 16))
        net.run_until_drained()
        assert net.trace_collector.calls
        assert net.stats.packets_delivered == 1

    def test_gzip_sniffed_regardless_of_name(self, tmp_path):
        _, trace = recorded_network()
        path = tmp_path / "renamed.bin"
        trace.save(path)  # compressed v2
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        assert TrafficTrace.load(path) == trace

    def test_digest_is_content_addressed(self, tmp_path):
        _, trace = recorded_network()
        a, b = tmp_path / "a.gz", tmp_path / "b.gz"
        trace.save(a)
        trace.save(b)
        assert trace_digest(a) == trace_digest(b)
        trace.save(b, byte_order="little")  # same trace, new bytes
        assert trace_digest(a) != trace_digest(b)


# -- offline re-ordering ----------------------------------------------


class TestReordered:
    def test_none_is_identity(self):
        _, trace = recorded_network()
        assert trace.reordered("none") is trace

    def test_popcount_desc_sorts_within_packets(self):
        trace = TrafficTrace(
            link_width=8,
            links={"R0.EAST": (1, 7, 3, 0xFF, 1)},
            cycles={"R0.EAST": (0, 1, 2, 3, 4)},
            packet_ids={"R0.EAST": (5, 5, 5, 9, 9)},
        )
        out = trace.reordered("popcount_desc")
        assert out.links["R0.EAST"] == (7, 3, 1, 0xFF, 1)
        # Slot metadata is untouched: same cycles, same owners.
        assert out.cycles == trace.cycles
        assert out.packet_ids == trace.packet_ids

    def test_reordered_trace_is_not_replayable(self):
        """The injection schedule describes the original payload order,
        so a reordered trace drops it rather than replaying stale
        traffic against permuted wire images."""
        _, trace = recorded_network()
        out = trace.reordered("popcount_desc")
        assert not out.packets
        assert not out.is_replayable

    def test_requires_packet_ids(self):
        _, trace = traced_network()  # lightweight collector: no ids
        with pytest.raises(ValueError, match="packet ids"):
            trace.reordered("popcount_desc")

    def test_unknown_ordering(self):
        _, trace = recorded_network()
        with pytest.raises(ValueError, match="ordering"):
            trace.reordered("ascending")


# -- network replay ---------------------------------------------------


class TestReplayThroughNetwork:
    def test_replay_reproduces_recorded_ledger(self):
        net, trace = recorded_network()
        for core in CORES:
            replayed = replay_through_network(trace, core=core)
            assert replayed.ledger.per_link() == net.ledger.per_link()
            assert (
                replayed.stats.total_bit_transitions
                == net.stats.total_bit_transitions
            )

    def test_replay_honours_process_default_core(self):
        _, trace = recorded_network()
        with network_core("stepped"):
            replayed = replay_through_network(trace)
        assert replayed.core == "stepped"

    def test_replay_with_overrides_changes_timing_not_payloads(self):
        net, trace = recorded_network()
        slow = replay_through_network(trace, overrides={"link_latency": 3})
        assert slow.stats.cycles > net.stats.cycles
        assert slow.stats.flits_injected == net.stats.flits_injected

    def test_replay_with_ordering_reorders_payloads(self):
        _, trace = recorded_network()
        replayed = replay_through_network(trace, ordering="popcount_desc")
        assert (
            replayed.stats.flit_hops
            == replay_through_network(trace).stats.flit_hops
        )

    def test_lightweight_trace_not_replayable(self):
        _, trace = traced_network()
        with pytest.raises(ValueError, match="no packet injection"):
            replay_through_network(trace)

    def test_round_tripped_trace_replays_identically(self, tmp_path):
        net, trace = recorded_network()
        path = tmp_path / "rt.trace.gz"
        trace.save(path)
        replayed = replay_through_network(TrafficTrace.load(path))
        assert replayed.ledger.per_link() == net.ledger.per_link()


class TestReencodePerLink:
    def test_sums_match_total(self):
        _, trace = recorded_network()
        for coding in ("none", "bus_invert", "delta"):
            per_link = reencode_per_link(trace, coding)
            assert set(per_link) == set(trace.links)
            assert sum(per_link.values()) == reencode_transitions(
                trace, coding
            )


class TestReencoding:
    def test_none_is_identity(self):
        _, trace = traced_network()
        assert reencode_transitions(trace, "none") == (
            trace.total_transitions()
        )

    def test_bus_invert_never_much_worse(self):
        _, trace = traced_network()
        plain = trace.total_transitions()
        coded = reencode_transitions(trace, "bus_invert")
        # Bus-invert bounds payload transitions and pays <= 1 line
        # transition per flit.
        assert coded <= plain + trace.total_flit_traversals()

    def test_unknown_coding(self):
        _, trace = traced_network()
        with pytest.raises(ValueError):
            reencode_transitions(trace, "gray")


class TestAcceleratorIntegration:
    def test_trace_through_accelerator(self, small_lenet, digit_image):
        config = AcceleratorConfig(max_tasks_per_layer=3, seed=4)
        sim = AcceleratorSimulator(config, small_lenet, digit_image)
        collector = TraceCollector()
        result = sim.run(trace_collector=collector)
        trace = collector.finish(config.link_width)
        assert trace.total_transitions() == result.total_bit_transitions
        assert result.all_verified


class TestWordBytesField:
    def test_zero_word_bytes_rejected(self, tmp_path):
        """An explicit word_bytes of 0 is corruption, not a cue to
        guess from link_width."""
        path = tmp_path / "zero.trace"
        doc = {"version": 2, "link_width": 8, "byte_order": "big",
               "word_bytes": 0, "links": {}, "cycles": {}}
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="word size"):
            TrafficTrace.load(path)

    def test_missing_word_bytes_falls_back_to_link_width(self, tmp_path):
        """Envelopes written before the field decode via link_width."""
        import base64

        path = tmp_path / "old.trace"
        doc = {"version": 2, "link_width": 16, "byte_order": "big",
               "links": {"R0.EAST":
                         base64.b64encode(b"\x00\x07\x00\x09").decode()},
               "cycles": {"R0.EAST": [0, 1]}}
        path.write_text(json.dumps(doc))
        assert TrafficTrace.load(path).links["R0.EAST"] == (7, 9)
