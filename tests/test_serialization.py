"""Round-trip serialization of configs and run results.

The campaign engine hashes configs into cache keys and persists run
results as JSONL, so ``to_dict``/``from_dict`` must be loss-free and
JSON-stable for every field, including the enum-typed ones.
"""

from __future__ import annotations

import json

import pytest

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.simulator import (
    LayerSummary,
    RunResult,
    run_model_on_noc,
)
from repro.noc.network import NoCConfig
from repro.ordering.strategies import FillOrder, OrderingMethod


class TestAcceleratorConfigRoundTrip:
    def test_default_round_trip(self):
        config = AcceleratorConfig()
        assert AcceleratorConfig.from_dict(config.to_dict()) == config

    def test_non_default_round_trip(self):
        config = AcceleratorConfig(
            width=8,
            height=8,
            n_mcs=4,
            data_format="float32",
            ordering=OrderingMethod.SEPARATED,
            fill_order=FillOrder.ROW_MAJOR,
            max_tasks_per_layer=None,
            chunk_pairs=None,
            layer_barrier=False,
            packet_scheduling="count_desc",
            mapping_policy="group_affine",
            weight_cache=True,
            include_index_payload=True,
            seed=77,
            extra={"model_ordering_latency": True},
        )
        rebuilt = AcceleratorConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.ordering is OrderingMethod.SEPARATED
        assert rebuilt.fill_order is FillOrder.ROW_MAJOR
        assert rebuilt.extra == {"model_ordering_latency": True}

    def test_dict_is_json_compatible(self):
        data = AcceleratorConfig(ordering=OrderingMethod.AFFILIATED).to_dict()
        assert json.loads(json.dumps(data)) == data
        assert data["ordering"] == "O1"
        assert data["fill_order"] == "deal"

    def test_unknown_field_rejected(self):
        data = AcceleratorConfig().to_dict()
        data["warp_drive"] = True
        with pytest.raises(ValueError, match="warp_drive"):
            AcceleratorConfig.from_dict(data)

    def test_validation_still_applies(self):
        data = AcceleratorConfig().to_dict()
        data["n_mcs"] = 0
        with pytest.raises(ValueError):
            AcceleratorConfig.from_dict(data)


class TestNoCConfigRoundTrip:
    def test_round_trip(self):
        config = NoCConfig(
            width=3, height=5, n_vcs=2, vc_depth=8, link_width=128,
            routing="yx", record_injection=True, link_latency=2,
        )
        assert NoCConfig.from_dict(config.to_dict()) == config
        assert json.loads(json.dumps(config.to_dict())) == config.to_dict()

    def test_unknown_field_rejected(self):
        data = NoCConfig().to_dict()
        data["wormholes"] = 9
        with pytest.raises(ValueError, match="wormholes"):
            NoCConfig.from_dict(data)

    def test_derived_noc_config_round_trips(self):
        noc = AcceleratorConfig(data_format="fixed8").noc_config()
        assert NoCConfig.from_dict(noc.to_dict()) == noc


class TestRunResultRoundTrip:
    def test_layer_summary_round_trip(self):
        layer = LayerSummary(
            layer_name="conv1", n_tasks=4, total_neurons=100,
            packets=8, flits=40, bit_transitions=1234, cycles=99,
        )
        assert LayerSummary.from_dict(layer.to_dict()) == layer

    def test_simulated_result_round_trip(self, small_lenet, digit_image):
        config = AcceleratorConfig(
            width=2, height=2, n_mcs=1,
            data_format="fixed8", max_tasks_per_layer=2,
        )
        result = run_model_on_noc(config, small_lenet, digit_image)
        data = result.to_dict()
        assert json.loads(json.dumps(data)) == data
        rebuilt = RunResult.from_dict(data)
        assert rebuilt == result
        assert rebuilt.config == config
        assert rebuilt.all_verified == result.all_verified
