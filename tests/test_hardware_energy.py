"""Tests for repro.hardware.energy."""

from __future__ import annotations

import pytest

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.simulator import run_model_on_noc
from repro.hardware.energy import compare_energy, energy_report
from repro.ordering.strategies import OrderingMethod


@pytest.fixture(scope="module")
def run_pair(small_lenet, digit_image):
    results = {}
    for method in (OrderingMethod.BASELINE, OrderingMethod.SEPARATED):
        cfg = AcceleratorConfig(
            data_format="fixed8",
            ordering=method,
            max_tasks_per_layer=5,
            seed=2,
        )
        results[method] = run_model_on_noc(cfg, small_lenet, digit_image)
    return results


class TestEnergyReport:
    def test_components_positive(self, run_pair):
        report = energy_report(run_pair[OrderingMethod.SEPARATED])
        assert report.link_energy_j > 0
        assert report.router_energy_j > 0
        assert report.ordering_energy_j > 0
        assert report.total_j == pytest.approx(
            report.link_energy_j
            + report.router_energy_j
            + report.ordering_energy_j
        )

    def test_baseline_pays_no_ordering_energy(self, run_pair):
        report = energy_report(run_pair[OrderingMethod.BASELINE])
        assert report.ordering_energy_j == 0.0

    def test_link_energy_tracks_transitions(self, run_pair):
        base = energy_report(run_pair[OrderingMethod.BASELINE])
        treated = energy_report(run_pair[OrderingMethod.SEPARATED])
        assert treated.bit_transitions < base.bit_transitions
        assert treated.link_energy_j < base.link_energy_j

    def test_duration_from_cycles(self, run_pair):
        result = run_pair[OrderingMethod.BASELINE]
        report = energy_report(result, frequency_hz=125e6)
        assert report.duration_s == pytest.approx(
            result.total_cycles / 125e6
        )

    def test_format_renders(self, run_pair):
        text = energy_report(run_pair[OrderingMethod.SEPARATED]).format()
        assert "link energy" in text
        assert "nJ" in text

    def test_invalid_frequency(self, run_pair):
        with pytest.raises(ValueError):
            energy_report(
                run_pair[OrderingMethod.BASELINE], frequency_hz=0.0
            )


class TestCompareEnergy:
    def test_net_savings_structure(self, run_pair):
        base = energy_report(run_pair[OrderingMethod.BASELINE])
        treated = energy_report(run_pair[OrderingMethod.SEPARATED])
        delta = compare_energy(base, treated)
        assert delta["link_saved_j"] > 0
        assert delta["ordering_cost_j"] >= 0
        assert delta["net_saved_j"] == pytest.approx(
            delta["link_saved_j"] - delta["ordering_cost_j"]
        )

    def test_percent_relative_to_link_energy(self, run_pair):
        base = energy_report(run_pair[OrderingMethod.BASELINE])
        treated = energy_report(run_pair[OrderingMethod.SEPARATED])
        delta = compare_energy(base, treated)
        assert delta["net_saved_percent"] == pytest.approx(
            100 * delta["net_saved_j"] / base.link_energy_j
        )
