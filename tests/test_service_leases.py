"""Lease table semantics under a fake clock.

Grants, heartbeat renewals, expiry, steals, and the missed-heartbeat
distinction are all deterministic here: the clock only moves when the
test says so.
"""

from __future__ import annotations

import pytest

from repro.service.leases import Lease, LeaseTable


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def table(clock):
    return LeaseTable(30.0, clock=clock)


class TestGrant:
    def test_grant_sets_deadline_and_counts(self, table, clock):
        lease = table.grant("j1", "w1", 1)
        assert isinstance(lease, Lease)
        assert lease.deadline == clock.now + 30.0
        assert lease.last_heartbeat == clock.now
        assert (table.granted, len(table)) == (1, 1)
        assert table.holder("j1") == "w1"

    def test_default_heartbeat_is_a_third_of_lease(self):
        assert LeaseTable(30.0).heartbeat_seconds == 10.0
        assert LeaseTable(30.0, heartbeat_seconds=2.0).heartbeat_seconds == 2.0

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValueError):
            LeaseTable(0.0)
        with pytest.raises(ValueError):
            LeaseTable(30.0, heartbeat_seconds=0.0)


class TestRenew:
    def test_renew_pushes_deadline(self, table, clock):
        table.grant("j1", "w1", 1)
        clock.advance(20.0)
        assert table.renew("j1", "w1") is True
        assert table.renewed == 1
        clock.advance(20.0)  # 40s after grant, 20s after renewal
        assert table.expire() == []

    def test_renew_refused_for_non_holder(self, table):
        table.grant("j1", "w1", 1)
        assert table.renew("j1", "w2") is False
        assert table.renew("missing", "w1") is False
        assert table.renewed == 0

    def test_renew_refused_after_expiry(self, table, clock):
        table.grant("j1", "w1", 1)
        clock.advance(31.0)
        table.expire()
        # The worker is still computing, but its lease is gone: the
        # refusal is how it learns.
        assert table.renew("j1", "w1") is False


class TestExpire:
    def test_expire_pops_past_deadline_only(self, table, clock):
        table.grant("j1", "w1", 1)
        clock.advance(10.0)
        table.grant("j2", "w2", 1)
        clock.advance(21.0)  # j1 at 31s (dead), j2 at 21s (alive)
        expired = table.expire()
        assert [l.job_id for l in expired] == ["j1"]
        assert (table.expired, len(table)) == (1, 1)

    def test_expire_counts_missed_heartbeats(self, table, clock):
        # Silent for the whole lease: two beat intervals missed.
        table.grant("dead", "w1", 1)
        clock.advance(31.0)
        table.expire()
        assert table.heartbeats_missed == 1

    def test_slow_but_beating_holder_is_not_a_missed_heartbeat(
        self, clock
    ):
        # Renewals only push the deadline by lease_seconds; a holder
        # that beats but whose beats stop renewing (e.g. the server's
        # sweep raced a renewal) expires without counting as silent.
        table = LeaseTable(30.0, heartbeat_seconds=20.0, clock=clock)
        table.grant("slow", "w1", 1)
        clock.advance(25.0)
        table.renew("slow", "w1")
        clock.advance(31.0)
        table.expire()
        assert table.expired == 1
        assert table.heartbeats_missed == 0

    def test_explicit_now_overrides_clock(self, table, clock):
        table.grant("j1", "w1", 1)
        assert table.expire(now=clock.now + 31.0) != []


class TestStealAndRelease:
    def test_regrant_to_other_worker_counts_steal(self, table, clock):
        table.grant("j1", "w1", 1)
        clock.advance(31.0)
        table.expire()
        table.grant("j1", "w2", 2)
        assert table.stolen == 1
        assert table.holder("j1") == "w2"

    def test_regrant_to_same_worker_is_not_a_steal(self, table, clock):
        table.grant("j1", "w1", 1)
        clock.advance(31.0)
        table.expire()
        table.grant("j1", "w1", 2)
        assert table.stolen == 0

    def test_release_drops_and_returns(self, table):
        table.grant("j1", "w1", 1)
        lease = table.release("j1")
        assert lease is not None and lease.worker == "w1"
        assert table.release("j1") is None
        assert len(table) == 0

    def test_released_then_regranted_is_not_a_steal(self, table):
        table.grant("j1", "w1", 1)
        table.release("j1")
        table.grant("j1", "w2", 1)
        assert table.stolen == 0


class TestBookkeeping:
    def test_next_deadline(self, table, clock):
        assert table.next_deadline() is None
        table.grant("j1", "w1", 1)
        clock.advance(5.0)
        table.grant("j2", "w2", 1)
        assert table.next_deadline() == 30.0  # j1's, the earlier one

    def test_counters_snapshot(self, table, clock):
        table.grant("j1", "w1", 1)
        table.renew("j1", "w1")
        clock.advance(31.0)
        table.expire()
        table.grant("j1", "w2", 2)
        counters = table.counters()
        assert counters == {
            "service.leases.granted": 2,
            "service.leases.renewed": 1,
            "service.leases.expired": 1,
            "service.jobs.stolen": 1,
            "service.heartbeats.missed": 1,
        }
