"""Trace diffing, slicing, windowed replay, and bisection.

Property section (hypothesis): self-diff emptiness survives a save /
load round trip, the diff is symmetric up to sign, and a full-range
``replay_window`` reproduces the whole-trace replay exactly.  Pinned
section: the golden fixture against its ``reordered`` re-encode, plus
synthetic late divergences that exercise real log2 localisation with
both probe modes.
"""

from __future__ import annotations

import dataclasses
import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.network import NoCConfig
from repro.obs.diff import bisect_divergence, trace_diff
from repro.workloads.traces import (
    PacketEvent,
    TrafficTrace,
    replay_through_network,
    replay_window,
    trace_slice,
)

GOLDEN_TRACE = (
    pathlib.Path(__file__).parent
    / "data"
    / "golden_lenet_fixed8_O0.trace.gz"
)
GOLDEN_TRACE_TOTAL_BT = 37510
GOLDEN_TRACE_REORDERED_BT = 37580


@pytest.fixture(scope="module")
def golden() -> TrafficTrace:
    return TrafficTrace.load(GOLDEN_TRACE)


# -- strategies -------------------------------------------------------


@st.composite
def timed_traces(draw, replayable: bool = False):
    """Traces whose links all carry per-hop cycles (sorted ascending)."""
    width = draw(st.integers(min_value=1, max_value=96))
    payload = st.integers(min_value=0, max_value=2**width - 1)
    links: dict[str, tuple[int, ...]] = {}
    cycles: dict[str, tuple[int, ...]] = {}
    vcs: dict[str, tuple[int, ...]] = {}
    pids: dict[str, tuple[int, ...]] = {}
    for i in range(draw(st.integers(min_value=0, max_value=3))):
        n = draw(st.integers(min_value=0, max_value=8))
        name = f"R{i}.EAST"
        links[name] = tuple(
            draw(st.lists(payload, min_size=n, max_size=n))
        )
        ticks = sorted(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=300),
                    min_size=n,
                    max_size=n,
                )
            )
        )
        cycles[name] = tuple(ticks)
        if replayable:
            vcs[name] = tuple([0] * n)
            pids[name] = tuple(range(n))
    packets: tuple[PacketEvent, ...] = ()
    noc = None
    if replayable:
        n_pkts = draw(st.integers(min_value=1, max_value=4))
        packets = tuple(
            PacketEvent(
                cycle=draw(st.integers(min_value=0, max_value=40)),
                src=draw(st.integers(min_value=0, max_value=8)),
                dst=draw(st.integers(min_value=0, max_value=8)),
                payloads=tuple(
                    draw(st.lists(payload, min_size=1, max_size=3))
                ),
            )
            for _ in range(n_pkts)
        )
        noc = NoCConfig(width=3, height=3, link_width=width).to_dict()
    return TrafficTrace(
        link_width=width, links=links, cycles=cycles, vcs=vcs,
        packet_ids=pids, packets=packets, noc=noc,
    )


# -- properties -------------------------------------------------------


class TestDiffProperties:
    @settings(deadline=None, max_examples=40)
    @given(trace=timed_traces(), window=st.sampled_from([1, 16, 64]))
    def test_self_diff_empty_after_round_trip(
        self, tmp_path_factory, trace, window
    ):
        """trace_diff(t, load(save(t))) is empty for any trace."""
        path = tmp_path_factory.mktemp("rt") / "t.trace.gz"
        trace.save(path)
        diff = trace_diff(trace, TrafficTrace.load(path), window)
        assert diff.is_empty
        assert diff.lines() == [
            "traces are identical (per-link, per-window BT heat)"
        ]

    @settings(deadline=None, max_examples=40)
    @given(
        a=timed_traces(),
        b=timed_traces(),
        window=st.sampled_from([1, 64]),
    )
    def test_diff_symmetric_up_to_sign(self, a, b, window):
        b = dataclasses.replace(b, link_width=a.link_width)
        fwd = trace_diff(a, b, window)
        rev = trace_diff(b, a, window)
        assert fwd.is_empty == rev.is_empty
        assert fwd.only_a == rev.only_b
        assert fwd.only_b == rev.only_a
        assert {d.link for d in fwd.deltas} == {
            d.link for d in rev.deltas
        }
        by_link = {d.link: d for d in rev.deltas}
        for d in fwd.deltas:
            mirror = by_link[d.link]
            assert mirror.delta == -d.delta
            assert mirror.first_window == d.first_window
            assert mirror.windows == tuple(
                (w, -v) for w, v in d.windows
            )

    @settings(deadline=None, max_examples=15)
    @given(trace=timed_traces(replayable=True))
    def test_full_range_replay_window_equals_whole_replay(self, trace):
        span = max(e.cycle for e in trace.packets) + 1
        whole = replay_through_network(trace)
        windowed = replay_window(trace, 0, span)
        assert windowed.ledger.per_link() == whole.ledger.per_link()
        assert (
            windowed.stats.total_bit_transitions
            == whole.stats.total_bit_transitions
        )


# -- trace_slice / replay_window units --------------------------------


class TestTraceSlice:
    def trace(self) -> TrafficTrace:
        return TrafficTrace(
            link_width=8,
            links={"L": (1, 2, 3, 4)},
            cycles={"L": (0, 10, 20, 30)},
            packet_ids={"L": (0, 1, 2, 3)},
            packets=(
                PacketEvent(cycle=5, src=0, dst=1, payloads=(9,)),
                PacketEvent(cycle=25, src=1, dst=0, payloads=(8,)),
            ),
        )

    def test_half_open_cycle_filter(self):
        sliced = trace_slice(self.trace(), 10, 30)
        assert sliced.links["L"] == (2, 3)
        assert sliced.cycles["L"] == (10, 20)
        assert sliced.packet_ids["L"] == (1, 2)
        assert tuple(e.cycle for e in sliced.packets) == (25,)

    def test_full_range_is_identity(self):
        trace = self.trace()
        assert trace_slice(trace, 0, 31) == trace

    def test_empty_window(self):
        sliced = trace_slice(self.trace(), 40, 50)
        assert sliced.links["L"] == ()
        assert sliced.packets == ()

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="need 0 <= start <= stop"):
            trace_slice(self.trace(), 5, 2)

    def test_golden_prefix_slices_are_prefix_sums(self, golden):
        # Per-link cycles are non-decreasing, so a prefix slice's BT
        # total is an exact prefix sum of the whole trace's.
        full = golden.per_link_transitions()
        prev = {}
        for stop in (0, 64, 128, 294):
            part = trace_slice(golden, 0, stop).per_link_transitions()
            for name, bts in part.items():
                assert bts >= prev.get(name, 0)
                assert bts <= full[name]
            prev = part
        assert prev == full


class TestReplayWindow:
    def test_empty_window_returns_zeroed_ledger(self, golden):
        net = replay_window(golden, 0, 0)
        assert net.ledger.per_link() == {}
        assert net.stats.total_bit_transitions == 0

    def test_full_range_matches_pinned_total(self, golden):
        net = replay_window(golden, 0, 294)
        assert (
            net.stats.total_bit_transitions == GOLDEN_TRACE_TOTAL_BT
        )

    def test_rejects_packetless_traces(self):
        bare = TrafficTrace(
            link_width=8, links={"L": (1,)}, cycles={"L": (0,)}
        )
        with pytest.raises(ValueError, match="no packet injection"):
            replay_window(bare, 0, 10)


# -- pinned golden bisection ------------------------------------------


class TestGoldenBisect:
    """Acceptance: golden fixture vs its reordered re-encode."""

    def test_diff_pins_total_delta(self, golden):
        diff = trace_diff(golden, golden.reordered("popcount_desc"))
        assert not diff.is_empty
        assert sum(d.delta for d in diff.deltas) == (
            GOLDEN_TRACE_REORDERED_BT - GOLDEN_TRACE_TOTAL_BT
        )

    def test_bisect_localises_first_window_and_links(self, golden):
        result = bisect_divergence(
            golden, golden.reordered("popcount_desc")
        )
        assert result.diverged
        # Reordering reshuffles wire images from the first flits on, so
        # the earliest diverging window is window 0 — on every link the
        # re-encode touched in that window.
        assert result.first_window == 0
        assert result.cycle_start == 0 and result.cycle_stop == 64
        assert result.links == (
            "R0.LOCAL", "R1.LOCAL", "R2.LOCAL", "R3.LOCAL", "R3.NORTH",
            "R4.NORTH", "R5.NORTH", "R6.EAST", "R6.NORTH", "R7.EAST",
            "R7.NORTH", "R8.NORTH",
        )
        assert result.probe == "offline"

    def test_self_bisect_does_not_diverge(self, golden):
        result = bisect_divergence(golden, golden)
        assert not result.diverged
        assert result.probes == 1  # one full-span probe settles it
        assert result.lines() == ["no divergence (1 offline probe(s))"]


class TestSyntheticBisect:
    def test_offline_probe_localises_a_late_flip(self, golden):
        """Flip one wire bit on one hop in window 3; bisection must
        come back with exactly that window and link."""
        links = dict(golden.links)
        cycles = golden.cycles["R6.EAST"]
        index = next(i for i, c in enumerate(cycles) if 192 <= c < 256)
        row = list(links["R6.EAST"])
        row[index] ^= 1
        links["R6.EAST"] = tuple(row)
        mutated = dataclasses.replace(golden, links=links)

        result = bisect_divergence(golden, mutated)
        assert result.diverged
        assert result.first_window == 3
        assert (result.cycle_start, result.cycle_stop) == (192, 256)
        assert result.links == ("R6.EAST",)
        # log2 localisation: 5 windows -> at most 1 + ceil(log2 5)
        # probes, far fewer than one per window.
        assert result.probes <= 4

    def test_replay_probe_localises_a_mutated_packet(self, golden):
        """Perturb the last injected packet's payloads; the replay
        probe (re-inject + live ledgers) localises where its traffic
        lands."""
        packets = list(golden.packets)
        last = max(
            range(len(packets)), key=lambda i: packets[i].cycle
        )
        event = packets[last]
        packets[last] = dataclasses.replace(
            event,
            payloads=tuple(p ^ 0b11 for p in event.payloads),
        )
        mutated = dataclasses.replace(golden, packets=tuple(packets))

        result = bisect_divergence(golden, mutated, probe="replay")
        assert result.diverged
        assert result.probe == "replay"
        assert result.first_window == 4
        assert (result.cycle_start, result.cycle_stop) == (256, 320)
        assert result.links == (
            "R0.SOUTH", "R1.WEST", "R3.SOUTH", "R6.LOCAL"
        )

    def test_replay_probe_self_is_clean(self, golden):
        result = bisect_divergence(golden, golden, probe="replay")
        assert not result.diverged
        assert result.probes == 1

    def test_rejects_bad_arguments(self, golden):
        with pytest.raises(ValueError, match="window must be >= 1"):
            bisect_divergence(golden, golden, window=0)
        with pytest.raises(ValueError, match="unknown probe mode"):
            bisect_divergence(golden, golden, probe="psychic")
        narrow = dataclasses.replace(golden, link_width=8)
        with pytest.raises(ValueError, match="different link widths"):
            trace_diff(golden, narrow)


# -- window-edge semantics (pinned) -----------------------------------


class TestReplayProbeEdgeSafety:
    """Regression tests for the pinned window-edge semantics.

    ``trace_slice`` filters hops and injections *independently* by
    their own cycles, so a prefix window cuts in-flight packets: a
    packet injected before ``stop`` keeps its injection event but
    loses every hop at or past ``stop``.  Replaying such a window
    drains those packets fully, which means scoring the drained ledger
    directly would charge hops the offline slice excludes.  The replay
    probe is therefore required to re-capture the replayed traffic and
    score it through the same hop-cycle slice — these tests pin that
    both probe modes agree exactly at every window edge.
    """

    @pytest.mark.parametrize("stop", [64, 128, 192, 200, 256])
    def test_replay_prefix_matches_offline_prefix(self, golden, stop):
        # Every stop here cuts at least one packet's flight mid-route
        # (the golden run keeps traffic in flight through cycle ~290),
        # which is exactly where a drained-ledger probe diverges.
        from repro.obs.diff import _offline_prefix, _replay_prefix

        assert _replay_prefix(golden, stop, None, 500_000) == (
            _offline_prefix(golden, stop)
        )

    def test_drained_ledger_overcounts_at_a_cutting_stop(self, golden):
        # Counter-pin: the re-capture + re-slice in the replay probe is
        # load-bearing.  The raw drained ledger of the same window
        # carries strictly more BTs than the offline prefix on the
        # links whose packets were cut mid-flight.
        from repro.obs.diff import _offline_prefix

        stop = 128
        drained = {
            name: bts
            for name, bts in replay_window(
                golden, 0, stop
            ).ledger.per_link().items()
            if bts
        }
        offline = _offline_prefix(golden, stop)
        assert drained != offline
        assert all(
            drained.get(name, 0) >= bts for name, bts in offline.items()
        )

    def test_probe_modes_agree_on_a_recaptured_mutation(self, golden):
        # End-to-end agreement: perturb one packet, replay + re-capture
        # so hops and injections stay consistent, then require both
        # probe modes to localise the same first window and links.
        from repro.noc.recorder import TraceRecorder

        packets = list(golden.packets)
        last = max(range(len(packets)), key=lambda i: packets[i].cycle)
        event = packets[last]
        packets[last] = dataclasses.replace(
            event, payloads=tuple(p ^ 0b11 for p in event.payloads)
        )
        schedule = dataclasses.replace(golden, packets=tuple(packets))
        recorder = TraceRecorder()
        net = replay_through_network(
            schedule, trace_collector=recorder
        )
        recaptured = recorder.finish(net.config)

        offline = bisect_divergence(golden, recaptured, probe="offline")
        replay = bisect_divergence(golden, recaptured, probe="replay")
        assert offline.diverged and replay.diverged
        assert replay.first_window == offline.first_window
        assert replay.links == offline.links
