"""Tests for the weight-stationary dataflow extension."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.flitize import TaskCodec
from repro.accelerator.mapping import make_placement
from repro.accelerator.simulator import run_model_on_noc
from repro.accelerator.tasks import extract_tasks
from repro.ordering.strategies import FillOrder, OrderingMethod


class TestInputOnlyCodec:
    def test_flit_count(self):
        codec = TaskCodec(16, 8)
        assert codec.input_flit_count(25) == 2  # 16 lanes per flit
        assert codec.input_flit_count(16) == 1
        with pytest.raises(ValueError):
            codec.input_flit_count(0)

    @settings(deadline=None, max_examples=30)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=255),
            min_size=1,
            max_size=50,
        ),
        st.sampled_from(list(OrderingMethod)),
    )
    def test_round_trip(self, inputs, method):
        codec = TaskCodec(16, 8)
        encoded = codec.encode_inputs_only(inputs, method)
        assert codec.decode_inputs_only(encoded) == inputs

    def test_separated_sorts_by_count(self):
        codec = TaskCodec(16, 8)
        inputs = [0x01, 0xFF, 0x00, 0x0F]
        encoded = codec.encode_inputs_only(
            inputs, OrderingMethod.SEPARATED
        )
        from repro.bits.packing import unpack_words
        from repro.bits.popcount import popcount
        from repro.ordering.strategies import undeal_rows

        rows = [unpack_words(p, 8, 16) for p in encoded.payloads]
        seq = undeal_rows(rows, encoded.fill)
        counts = [popcount(w) for w in seq]
        assert counts == sorted(counts, reverse=True)

    def test_baseline_keeps_original_order(self):
        codec = TaskCodec(16, 8)
        inputs = [5, 9, 1]
        encoded = codec.encode_inputs_only(
            inputs, OrderingMethod.BASELINE
        )
        from repro.bits.packing import unpack_words

        lanes = unpack_words(encoded.payloads[0], 8, 16)
        assert lanes[:3] == inputs

    def test_half_the_flits_of_a_full_packet(self):
        codec = TaskCodec(16, 32)
        full = codec.data_flit_count(25)  # 4 flits
        inputs_only = codec.input_flit_count(25)  # 2 flits
        assert inputs_only < full


class TestGroupAffineMapping:
    def test_same_group_same_pe(self):
        placement = make_placement(4, 4, 2)
        pes = {placement.pe_for_group(0, 3) for _ in range(5)}
        assert len(pes) == 1

    def test_groups_spread_over_pes(self):
        placement = make_placement(4, 4, 2)
        pes = {placement.pe_for_group(1, g) for g in range(20)}
        assert len(pes) > 5

    def test_task_groups_extracted(self, small_lenet, digit_image):
        layers = extract_tasks(small_lenet, digit_image, None)
        conv1 = layers[0]
        # conv1: 6 output channels, 784 positions each.
        groups = {t.group for t in conv1.tasks}
        assert groups == set(range(6))
        for t in conv1.tasks:
            assert t.group == t.neuron_index // 784

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(weight_cache=True)  # needs group_affine
        with pytest.raises(ValueError):
            AcceleratorConfig(mapping_policy="random")


class TestWeightStationaryRuns:
    @pytest.mark.parametrize(
        "method", [OrderingMethod.BASELINE, OrderingMethod.SEPARATED]
    )
    def test_cached_runs_verify(self, small_lenet, digit_image, method):
        cfg = AcceleratorConfig(
            data_format="fixed8",
            ordering=method,
            max_tasks_per_layer=12,
            mapping_policy="group_affine",
            weight_cache=True,
            seed=3,
        )
        res = run_model_on_noc(cfg, small_lenet, digit_image)
        assert res.all_verified

    def test_cache_reduces_traffic(self, small_lenet, digit_image):
        base_cfg = AcceleratorConfig(
            data_format="fixed8",
            max_tasks_per_layer=12,
            mapping_policy="group_affine",
            seed=3,
        )
        cache_cfg = AcceleratorConfig(
            data_format="fixed8",
            max_tasks_per_layer=12,
            mapping_policy="group_affine",
            weight_cache=True,
            seed=3,
        )
        base = run_model_on_noc(base_cfg, small_lenet, digit_image)
        cached = run_model_on_noc(cache_cfg, small_lenet, digit_image)
        assert cached.flit_hops < base.flit_hops
        assert cached.total_bit_transitions < base.total_bit_transitions
        assert cached.all_verified

    def test_float32_cached_verifies(self, small_lenet, digit_image):
        cfg = AcceleratorConfig(
            data_format="float32",
            ordering=OrderingMethod.AFFILIATED,
            max_tasks_per_layer=8,
            mapping_policy="group_affine",
            weight_cache=True,
            seed=3,
        )
        res = run_model_on_noc(cfg, small_lenet, digit_image)
        assert res.all_verified
