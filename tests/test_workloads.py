"""Tests for repro.workloads (no-NoC experiments and weight streams)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bits.popcount import popcount_array
from repro.workloads.packets import (
    ComparisonMode,
    OrderingScope,
    build_packets,
    measure_stream,
    ones_count_grid,
)
from repro.workloads.streams import (
    model_weight_values,
    random_weights,
    words_for_format,
)


@pytest.fixture(scope="module")
def float_words():
    values = random_weights(4000, seed=3)
    words, fmt = words_for_format(values, "float32")
    return np.asarray(words), fmt


@pytest.fixture(scope="module")
def fixed_words():
    values = random_weights(4000, seed=3)
    words, fmt = words_for_format(values, "fixed8")
    return np.asarray(words), fmt


class TestBuildPackets:
    def test_geometry(self, float_words):
        words, fmt = float_words
        stream = build_packets(words, 100, 8, fmt.width, kernel_size=25)
        assert stream.flits_per_packet == 4  # ceil(25/8)
        assert stream.n_flits == 400
        assert stream.flit_bits == 256
        assert stream.n_packets == 100

    def test_zero_padding_present(self, float_words):
        words, fmt = float_words
        stream = build_packets(words, 10, 8, fmt.width, kernel_size=25)
        # Each packet's last flit carries 25 % 8 = 1 value + 7 zeros.
        last_flit = stream.flits[3]
        assert (last_flit[1:] == 0).all()

    def test_full_packets_have_no_padding(self, float_words):
        words, fmt = float_words
        stream = build_packets(words, 10, 8, fmt.width, kernel_size=32)
        assert (stream.flits != 0).any(axis=1).all()

    def test_ordered_stream_counts_descend(self, float_words):
        words, fmt = float_words
        stream = build_packets(
            words, 50, 8, fmt.width, kernel_size=25,
            ordered=True, scope=OrderingScope.STREAM,
        )
        counts = popcount_array(stream.flits.reshape(-1)).astype(int)
        assert (np.diff(counts) <= 0).all()

    def test_packet_scope_preserves_packet_contents(self, float_words):
        words, fmt = float_words
        base = build_packets(words, 20, 8, fmt.width, kernel_size=25)
        ordered = build_packets(
            words, 20, 8, fmt.width, kernel_size=25,
            ordered=True, scope=OrderingScope.PACKET,
        )
        fpp = base.flits_per_packet
        for p in range(20):
            b = np.sort(base.flits[p * fpp : (p + 1) * fpp].reshape(-1))
            o = np.sort(ordered.flits[p * fpp : (p + 1) * fpp].reshape(-1))
            np.testing.assert_array_equal(b, o)

    def test_window_scope_preserves_window_contents(self, fixed_words):
        words, fmt = fixed_words
        base = build_packets(words, 64, 8, fmt.width, kernel_size=25)
        ordered = build_packets(
            words, 64, 8, fmt.width, kernel_size=25,
            ordered=True, scope=OrderingScope.WINDOW, window_packets=16,
        )
        slots = base.flits_per_packet * 8 * 16
        flat_b = base.flits.reshape(-1)
        flat_o = ordered.flits.reshape(-1)
        for start in range(0, flat_b.size, slots):
            np.testing.assert_array_equal(
                np.sort(flat_b[start : start + slots]),
                np.sort(flat_o[start : start + slots]),
            )

    def test_kernel_too_large(self, float_words):
        words, fmt = float_words
        with pytest.raises(ValueError):
            build_packets(
                words, 10, 8, fmt.width, kernel_size=40, flits_per_packet=2
            )

    def test_random_offsets(self, float_words):
        words, fmt = float_words
        rng = np.random.default_rng(0)
        a = build_packets(words, 10, 8, fmt.width, rng=rng)
        b = build_packets(words, 10, 8, fmt.width)
        assert not np.array_equal(a.flits, b.flits)

    def test_payload_ints_match_matrix(self, fixed_words):
        words, fmt = fixed_words
        stream = build_packets(words, 5, 8, fmt.width, kernel_size=25)
        payloads = stream.payload_ints()
        lane0 = stream.flits[0, 0]
        assert payloads[0] & 0xFF == lane0


class TestMeasureStream:
    def test_ordering_reduces_stream_bt(self, fixed_words):
        words, fmt = fixed_words
        base = build_packets(words, 300, 8, fmt.width, kernel_size=25)
        ordered = build_packets(
            words, 300, 8, fmt.width, kernel_size=25, ordered=True
        )
        assert (
            measure_stream(ordered).bt_per_flit
            < measure_stream(base).bt_per_flit
        )

    def test_random_pairs_erase_the_win(self, fixed_words):
        # The comparison-mode ablation: ordering only helps when flits
        # traverse in stream order.
        words, fmt = fixed_words
        ordered = build_packets(
            words, 300, 8, fmt.width, kernel_size=25, ordered=True
        )
        rng = np.random.default_rng(5)
        stream_bt = measure_stream(ordered).bt_per_flit
        random_bt = measure_stream(
            ordered, ComparisonMode.RANDOM_PAIRS, rng=rng
        ).bt_per_flit
        assert random_bt > stream_bt

    def test_intra_packet_mode_comparisons(self, fixed_words):
        words, fmt = fixed_words
        stream = build_packets(words, 50, 8, fmt.width, kernel_size=25)
        result = measure_stream(stream, ComparisonMode.INTRA_PACKET)
        assert result.comparisons == 50 * 3  # fpp-1 per packet

    def test_empty_result_guard(self):
        from repro.workloads.packets import StreamResult

        assert StreamResult(0, 0).bt_per_flit == 0.0


class TestOnesCountGrid:
    def test_grid_shape_and_values(self, fixed_words):
        words, fmt = fixed_words
        stream = build_packets(words, 10, 8, fmt.width, kernel_size=25)
        grid = ones_count_grid(stream)
        assert grid.shape == (40, 8)
        assert grid.max() <= 8
        assert grid.min() >= 0


class TestStreams:
    def test_random_weights_deterministic(self):
        a = random_weights(100, seed=1)
        b = random_weights(100, seed=1)
        np.testing.assert_array_equal(a, b)

    def test_random_weights_bounded(self):
        w = random_weights(1000, seed=1, fan_in=25)
        assert np.abs(w).max() <= np.sqrt(6 / 25)

    def test_model_weight_values(self, small_lenet):
        values = model_weight_values(small_lenet)
        assert values.size == 61706 - (6 + 16 + 120 + 84 + 10)  # no biases

    def test_words_for_format_float32(self):
        words, fmt = words_for_format(np.array([0.0, 1.0]), "float32")
        assert fmt.width == 32
        assert int(np.asarray(words)[1]) == 0x3F800000

    def test_words_for_format_fixed8_scale(self):
        words, fmt = words_for_format(np.array([-2.0, 2.0]), "fixed8")
        assert fmt.scale == pytest.approx(2.0 / 127)

    def test_unknown_format(self):
        with pytest.raises(ValueError):
            words_for_format(np.zeros(4), "int4")
