"""Atomic write helpers: all-or-nothing file replacement."""

from __future__ import annotations

import pytest

from repro.ioutil import atomic_open, atomic_write_bytes, atomic_write_text


class TestAtomicOpen:
    def test_success_replaces_and_leaves_no_temp(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        with atomic_open(target) as fh:
            fh.write("new")
        assert target.read_text() == "new"
        assert list(tmp_path.iterdir()) == [target]

    def test_failure_keeps_previous_content(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("precious")
        with pytest.raises(RuntimeError):
            with atomic_open(target) as fh:
                fh.write("half-writ")
                raise RuntimeError("crash mid-write")
        assert target.read_text() == "precious"
        assert list(tmp_path.iterdir()) == [target]  # temp cleaned up

    def test_target_absent_until_complete(self, tmp_path):
        target = tmp_path / "fresh.txt"
        with atomic_open(target) as fh:
            fh.write("body")
            assert not target.exists()
        assert target.read_text() == "body"

    def test_rejects_non_write_modes(self, tmp_path):
        for mode in ("r", "a", "r+", "w+"):
            with pytest.raises(ValueError, match="write-only"):
                with atomic_open(tmp_path / "x", mode):
                    pass

    def test_binary_and_text_helpers(self, tmp_path):
        atomic_write_text(tmp_path / "t.txt", "text")
        atomic_write_bytes(tmp_path / "b.bin", b"\x00\xff")
        assert (tmp_path / "t.txt").read_text() == "text"
        assert (tmp_path / "b.bin").read_bytes() == b"\x00\xff"
