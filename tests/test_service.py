"""End-to-end sweep service: server, workers, leases, chaos.

The determinism gate from the inline chaos matrix extends across the
wire here: campaigns served to socket workers — through injected
connection drops, torn frames, stalled heartbeats, duplicate results,
and killed worker processes — must land on records identical to a
fault-free inline run.

Worker processes that include a "kill" fault are always real
subprocesses (``multiprocessing.Process``): the kill fires
``os._exit`` in whatever process runs the job, and that must never be
the test driver.
"""

from __future__ import annotations

import multiprocessing
import threading
import time

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.faults import FaultAction, FaultPlan
from repro.experiments.runner import SpecDriftError, execute_job
from repro.experiments.spec import campaign_id
from repro.experiments.store import CampaignJournal, ResultStore
from repro.service import (
    ServerLostError,
    SweepServer,
    SweepWorker,
    run_worker,
)
from repro.service.protocol import connect

from test_experiments_faults import (
    fault_free_records,
    small_spec,
    stripped,
)


def tiny_spec(**overrides):
    """A one-job grid — the unit for manual protocol sessions."""
    return small_spec(
        axes={"mesh": ["2x2:1"], "ordering": ["O0"]}, **overrides
    )


def wait_for(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def serve(spec, **kwargs):
    server = SweepServer(spec, **kwargs)
    server.start()
    return server


def attach_workers(server, count, **kwargs):
    """Run ``count`` in-process SweepWorkers against ``server``."""
    workers = [
        SweepWorker(
            server.host,
            server.port,
            name=f"tw{i}",
            reconnect_attempts=3,
            reconnect_backoff=0.05,
            **kwargs,
        )
        for i in range(count)
    ]
    summaries = [None] * count

    def run(i):
        summaries[i] = workers[i].run()

    threads = [
        threading.Thread(target=run, args=(i,)) for i in range(count)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120.0)
    return summaries


def ok_record(server, index=0):
    """A plausible completed record for the server's job ``index``."""
    job = server.spec.expand()[index]
    record = job.to_dict()
    record.update(
        job_id=job.job_id, status="ok", result={"fake": True}, error=None
    )
    return record


class TestServedCampaign:
    def test_clean_served_run_matches_inline(self):
        server = serve(small_spec())
        try:
            summaries = attach_workers(server, 2)
            result = server.wait(timeout=60.0)
        finally:
            server.close()
        assert result is not None and not result.interrupted
        assert result.errors == 0
        assert stripped(result.records) == fault_free_records()
        assert all(s["drained"] for s in summaries)
        assert sum(s["jobs_done"] for s in summaries) == 4
        assert result.metrics["service.leases.granted"] == 4
        assert result.metrics["service.workers.peak"] == 2
        assert result.metrics["service.leases.expired"] == 0

    def test_reporter_worker_receives_records(self):
        server = serve(tiny_spec())
        try:
            (summary,) = attach_workers(server, 1, report=True)
        finally:
            server.close()
        assert summary["drained"] and summary["reason"] == "complete"
        assert stripped(summary["records"]) == stripped(
            server.result.records
        )
        assert "1 jobs" in summary["summary"]

    def test_fully_cached_campaign_needs_no_workers(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = small_spec()
        from repro.experiments.runner import CampaignRunner

        CampaignRunner(cache=cache, workers=2).run(spec)
        server = serve(spec, cache=cache)
        try:
            result = server.wait(timeout=5.0)
        finally:
            server.close()
        assert result is not None
        assert (result.hits, result.misses) == (4, 0)
        assert stripped(result.records) == fault_free_records()

    def test_shared_cache_is_populated_once_per_job(self, tmp_path):
        cache_root = tmp_path / "shared"
        spec = small_spec()
        server = serve(spec, cache=ResultCache(cache_root))
        try:
            attach_workers(
                server,
                2,
                cache=ResultCache(cache_root),
                campaign_id=campaign_id(spec),
            )
            result = server.wait(timeout=60.0)
        finally:
            server.close()
        assert result is not None and result.errors == 0
        cache = ResultCache(cache_root)
        assert len(cache) == 4
        report = cache.verify()
        assert (report["ok"], report["corrupt"]) == (4, [])
        # Every cross-process claim was released on completion.
        assert list((cache_root / "claims").glob("*.claim")) == []


class TestHandshake:
    def test_campaign_mismatch_rejected(self):
        server = serve(tiny_spec())
        try:
            worker = SweepWorker(
                server.host,
                server.port,
                name="wrong",
                campaign_id="sweep-deadbeef",
                reconnect_attempts=2,
                reconnect_backoff=0.01,
            )
            summary = worker.run()
        finally:
            server.close()
        assert summary["server_lost"] is True
        assert "campaign mismatch" in summary["rejected"]
        # Rejection is final: no reconnect burn.
        assert summary["reconnects"] == 0

    def test_dead_server_raises_server_lost(self):
        server = serve(tiny_spec())
        host, port = server.host, server.port
        server.close()
        worker = SweepWorker(
            host,
            port,
            name="orphan",
            reconnect_attempts=2,
            reconnect_backoff=0.01,
        )
        summary = worker.run()
        assert summary["server_lost"] is True
        assert "unreachable after 2 reconnect attempts" in summary["error"]

    def test_server_lost_error_is_connection_error(self):
        assert issubclass(ServerLostError, ConnectionError)


class TestProtocolSession:
    """Drive the wire protocol by hand for exact reply semantics."""

    def test_session_lifecycle_and_duplicate_ack(self):
        # Two jobs so the duplicate submission lands while the
        # campaign is still open (and shows up in the final metrics).
        spec = small_spec(axes={"mesh": ["2x2:1"], "ordering": ["O0", "O2"]})
        server = serve(spec)
        try:
            channel = connect(server.host, server.port)
            welcome = channel.request(
                {"type": "hello", "worker": "manual"}
            )
            assert welcome["type"] == "welcome"
            assert welcome["campaign_id"] == server.campaign_id
            assert welcome["n_jobs"] == 2
            assert welcome["heartbeat_seconds"] == pytest.approx(
                server.lease_seconds / 3.0
            )

            grant = channel.request(
                {"type": "claim", "worker": "manual"}
            )
            assert grant["type"] == "job"
            assert grant["attempt"] == 1
            assert (
                grant["job_id"] == spec.expand()[grant["index"]].job_id
            )

            status = channel.request({"type": "status"})
            assert (status["leased"], status["pending"]) == (1, 1)

            beat = channel.request(
                {
                    "type": "heartbeat",
                    "worker": "manual",
                    "job_id": grant["job_id"],
                }
            )
            assert beat == {"type": "ack", "renewed": True}

            result = {
                "type": "result",
                "worker": "manual",
                "job_id": grant["job_id"],
                "record": ok_record(server, grant["index"]),
            }
            first = channel.request(result)
            assert first == {
                "type": "ack",
                "accepted": True,
                "duplicate": False,
            }
            second = channel.request(result)
            assert second["duplicate"] is True

            other = channel.request({"type": "claim", "worker": "manual"})
            channel.request(
                {
                    "type": "result",
                    "worker": "manual",
                    "job_id": other["job_id"],
                    "record": ok_record(server, other["index"]),
                }
            )
            drain = channel.request(
                {"type": "claim", "worker": "manual"}
            )
            assert drain["type"] == "drain"
            assert drain["reason"] == "complete"
            channel.close()
            final = server.wait(timeout=5.0)
        finally:
            server.close()
        assert final is not None
        assert final.metrics["service.results.duplicate"] == 1

    def test_malformed_result_not_accepted(self):
        server = serve(tiny_spec())
        try:
            channel = connect(server.host, server.port)
            channel.request({"type": "hello", "worker": "m"})
            ack = channel.request(
                {"type": "result", "worker": "m", "job_id": "nope"}
            )
            assert ack["accepted"] is False
            unknown = channel.request({"type": "frobnicate"})
            assert unknown["type"] == "error"
            channel.close()
        finally:
            server.close()

    def test_wait_reply_when_queue_is_leased_out(self):
        server = serve(tiny_spec())
        try:
            a = connect(server.host, server.port)
            a.request({"type": "hello", "worker": "a"})
            grant = a.request({"type": "claim", "worker": "a"})
            assert grant["type"] == "job"
            b = connect(server.host, server.port)
            b.request({"type": "hello", "worker": "b"})
            told = b.request({"type": "claim", "worker": "b"})
            assert told["type"] == "wait"
            assert told["seconds"] > 0
            a.close()
            b.close()
        finally:
            server.close()


class TestLeaseRecovery:
    def test_expired_lease_is_stolen_and_late_result_discarded(self):
        server = serve(tiny_spec(), lease_seconds=0.3)
        try:
            # w1 claims, then goes silent (no heartbeat).
            w1 = connect(server.host, server.port)
            w1.request({"type": "hello", "worker": "w1"})
            grant1 = w1.request({"type": "claim", "worker": "w1"})
            assert grant1["type"] == "job"

            # The sweeper reaps the lease and re-queues the job.
            w2 = connect(server.host, server.port)
            w2.request({"type": "hello", "worker": "w2"})

            def steal():
                reply = w2.request({"type": "claim", "worker": "w2"})
                return reply if reply["type"] == "job" else None

            grant2 = None

            def try_steal():
                nonlocal grant2
                grant2 = steal()
                return grant2 is not None

            assert wait_for(try_steal, timeout=10.0, interval=0.1)
            assert grant2["job_id"] == grant1["job_id"]
            assert grant2["attempt"] == 2

            # w1's heartbeat is refused: its lease is gone.
            beat = w1.request(
                {
                    "type": "heartbeat",
                    "worker": "w1",
                    "job_id": grant1["job_id"],
                }
            )
            assert beat["renewed"] is False

            # w2 completes; w1's late result is a duplicate.
            w2.request(
                {
                    "type": "result",
                    "worker": "w2",
                    "job_id": grant2["job_id"],
                    "record": ok_record(server),
                }
            )
            late = w1.request(
                {
                    "type": "result",
                    "worker": "w1",
                    "job_id": grant1["job_id"],
                    "record": ok_record(server),
                }
            )
            assert late["duplicate"] is True
            w1.close()
            w2.close()
            result = server.wait(timeout=5.0)
        finally:
            server.close()
        assert result is not None
        assert result.metrics["service.leases.expired"] >= 1
        assert result.metrics["service.jobs.stolen"] == 1
        assert result.metrics["service.heartbeats.missed"] >= 1
        assert result.retries >= 1

    def test_heartbeats_keep_a_slow_job_alive(self):
        server = serve(tiny_spec(), lease_seconds=0.4)
        try:
            channel = connect(server.host, server.port)
            channel.request({"type": "hello", "worker": "slow"})
            grant = channel.request({"type": "claim", "worker": "slow"})
            # "Compute" for three lease budgets, beating throughout.
            for _ in range(12):
                time.sleep(0.1)
                beat = channel.request(
                    {
                        "type": "heartbeat",
                        "worker": "slow",
                        "job_id": grant["job_id"],
                    }
                )
                assert beat["renewed"] is True
            ack = channel.request(
                {
                    "type": "result",
                    "worker": "slow",
                    "job_id": grant["job_id"],
                    "record": ok_record(server),
                }
            )
            assert ack["duplicate"] is False
            channel.close()
            result = server.wait(timeout=5.0)
        finally:
            server.close()
        assert result is not None
        assert result.metrics["service.leases.expired"] == 0
        assert result.metrics["service.leases.renewed"] >= 12

    def test_exhausted_lease_retries_quarantine(self):
        server = serve(tiny_spec(), lease_seconds=0.2, max_retries=0)
        try:
            channel = connect(server.host, server.port)
            channel.request({"type": "hello", "worker": "dead"})
            grant = channel.request({"type": "claim", "worker": "dead"})
            assert grant["type"] == "job"
            result = server.wait(timeout=10.0)
            channel.close()
        finally:
            server.close()
        assert result is not None
        assert result.errors == 1
        assert result.quarantined == [grant["job_id"]]
        bad = result.records[0]
        assert bad["error_class"] == "lease_expired"
        assert "stopped heartbeating" in bad["error"]
        assert bad["quarantined"] is True


class TestDrainAndResume:
    def test_shutdown_checkpoints_exactly_like_sigint(self, tmp_path):
        spec = small_spec()
        journal = CampaignJournal(tmp_path / "c.journal")
        store = ResultStore(tmp_path / "c.jsonl")
        server = serve(spec, journal=journal, store=store)
        try:
            channel = connect(server.host, server.port)
            channel.request({"type": "hello", "worker": "one"})
            grant = channel.request({"type": "claim", "worker": "one"})
            # Really execute the first job: its journaled record must
            # survive the resume byte-identically.
            channel.request(
                {
                    "type": "result",
                    "worker": "one",
                    "job_id": grant["job_id"],
                    "record": execute_job(grant["payload"]),
                }
            )
            partial = server.shutdown()
            # A draining server tells claimants to go away.
            drain = channel.request({"type": "claim", "worker": "one"})
            assert drain["type"] == "drain"
            assert drain["interrupted"] is True
            channel.close()
        finally:
            server.close()
        assert partial.interrupted
        assert len(partial.remaining) == 3
        assert [e["event"] for e in journal.entries()][-1] == "checkpoint"

        # Resume with a fresh server: only the 3 remaining jobs run.
        resumed = serve(spec, journal=journal, store=store)
        try:
            attach_workers(resumed, 2)
            final = resumed.wait(timeout=60.0)
        finally:
            resumed.close()
        assert final is not None and not final.interrupted
        assert final.resumed == 1
        assert final.misses == 3
        assert stripped(final.records) == fault_free_records()
        assert [e["event"] for e in journal.entries()][-1] == "end"

    def test_resume_refuses_drifted_spec(self, tmp_path):
        journal = CampaignJournal(tmp_path / "c.journal")
        server = serve(small_spec(), journal=journal)
        server.shutdown()
        server.close()
        drifted = small_spec(axes={"mesh": ["3x3:1"], "ordering": ["O0"]})
        with pytest.raises(SpecDriftError, match="drifted"):
            SweepServer(drifted, journal=journal).start()


class TestNetworkChaos:
    def test_chaos_matrix_over_real_sockets(self, tmp_path):
        """The ISSUE gate, distributed: kill + heartbeat-stalled hang +
        connection drop + torn frame + duplicate result across real
        subprocess workers lands on fault-free records."""
        spec = small_spec()
        plan = FaultPlan(
            {
                0: [FaultAction("kill", attempt=1)],
                1: [
                    FaultAction("heartbeat_stall", hang_seconds=5.0,
                                attempt=1),
                    FaultAction("hang", hang_seconds=2.5, attempt=1),
                ],
                2: [FaultAction("drop_connection", attempt=1)],
                3: [
                    FaultAction("torn_frame", attempt=1),
                    FaultAction("duplicate_result", attempt=2),
                ],
            }
        )
        store = ResultStore(tmp_path / "chaos.jsonl")
        server = serve(
            spec,
            store=store,
            lease_seconds=1.0,
            max_retries=3,
            fault_plan=plan,
        )
        procs = [
            multiprocessing.Process(
                target=run_worker,
                args=(server.host, server.port),
                kwargs={
                    "name": f"pw{i}",
                    "reconnect_attempts": 8,
                    "reconnect_backoff": 0.1,
                },
            )
            for i in range(3)
        ]
        try:
            for p in procs:
                p.start()
            result = server.wait(timeout=120.0)
            server.linger(timeout=10.0)
        finally:
            server.close()
            for p in procs:
                p.join(timeout=30.0)
                if p.is_alive():
                    p.kill()
        assert result is not None and not result.interrupted
        assert result.errors == 0
        assert stripped(result.records) == fault_free_records()
        assert stripped(store.load()) == fault_free_records()
        # The kill and the stalled hang both cost a lease.
        assert result.metrics["service.leases.expired"] >= 2
        assert result.metrics["service.jobs.stolen"] >= 1
        # The torn frame severed a connection mid-write.
        assert result.metrics["service.protocol.errors"] >= 1
        assert result.metrics["service.reconnects"] >= 2
        # ok records carry no worker identity or timing.
        for record in result.records:
            for key in ("worker", "attempt", "attempts", "elapsed"):
                assert key not in record
