"""Tests for repro.bits.packing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bits.packing import (
    array_from_words,
    pack_words,
    unpack_words,
    words_from_array,
)


class TestPackWords:
    def test_single_word(self):
        assert pack_words([0xAB], 8) == 0xAB

    def test_lane_zero_in_low_bits(self):
        payload = pack_words([0x01, 0x02], 8)
        assert payload == 0x0201

    def test_empty(self):
        assert pack_words([], 8) == 0

    def test_rejects_oversized(self):
        with pytest.raises(ValueError):
            pack_words([256], 8)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            pack_words([-1], 8)

    def test_512_bit_payload(self):
        words = list(range(16))
        payload = pack_words(words, 32)
        assert payload.bit_length() <= 512


class TestRoundTrip:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=255), min_size=0, max_size=32
        )
    )
    def test_pack_unpack_8(self, words):
        payload = pack_words(words, 8)
        assert unpack_words(payload, 8, len(words)) == words

    @given(
        st.lists(
            st.integers(min_value=0, max_value=2**32 - 1),
            min_size=1,
            max_size=16,
        )
    )
    def test_pack_unpack_32(self, words):
        payload = pack_words(words, 32)
        assert unpack_words(payload, 32, len(words)) == words

    def test_unpack_rejects_negative_payload(self):
        with pytest.raises(ValueError):
            unpack_words(-5, 8, 1)


class TestArrayConversions:
    def test_words_from_array(self):
        arr = np.array([1, 2, 3], dtype=np.uint32)
        assert words_from_array(arr) == [1, 2, 3]

    def test_words_from_array_rejects_signed(self):
        with pytest.raises(ValueError):
            words_from_array(np.array([1], dtype=np.int8))

    def test_array_from_words(self):
        arr = array_from_words([255, 0], 8)
        assert arr.dtype == np.uint8
        np.testing.assert_array_equal(arr, [255, 0])

    def test_array_from_words_rejects_odd_width(self):
        with pytest.raises(ValueError):
            array_from_words([1], 12)

    def test_inverse(self):
        arr = np.array([7, 11, 13], dtype=np.uint16)
        assert (array_from_words(words_from_array(arr), 16) == arr).all()


class TestPackWordsNumpyInputs:
    """The byte fast paths must treat numpy arrays as word sequences."""

    def test_width8_numpy_array_wider_dtype(self):
        words = np.array([1, 2], dtype=np.uint32)
        assert pack_words(words, 8) == 0x0201

    def test_width8_numpy_array_out_of_range_raises(self):
        with pytest.raises(ValueError, match="lane 0"):
            pack_words(np.array([300], dtype=np.uint32), 8)

    def test_width32_numpy_array(self):
        words = np.array([1, 2], dtype=np.uint64)
        assert pack_words(words, 32) == (2 << 32) | 1
