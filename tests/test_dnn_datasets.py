"""Tests for repro.dnn.datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dnn.datasets import LabeledDataset, synthetic_digits, synthetic_shapes


class TestSyntheticDigits:
    def test_shapes(self):
        ds = synthetic_digits(20, seed=1)
        assert ds.images.shape == (20, 1, 32, 32)
        assert ds.labels.shape == (20,)

    def test_value_range(self):
        ds = synthetic_digits(20, seed=1)
        assert ds.images.min() >= 0.0
        assert ds.images.max() <= 1.0

    def test_all_classes_present(self):
        ds = synthetic_digits(300, seed=1)
        assert set(ds.labels.tolist()) == set(range(10))

    def test_deterministic(self):
        a = synthetic_digits(10, seed=7)
        b = synthetic_digits(10, seed=7)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = synthetic_digits(10, seed=7)
        b = synthetic_digits(10, seed=8)
        assert not np.array_equal(a.images, b.images)

    def test_glyph_visible_over_noise(self):
        ds = synthetic_digits(10, seed=1, noise=0.05)
        # Digit pixels should push the mean clearly above the noise floor.
        assert ds.images.mean() > 0.05

    def test_size_too_small(self):
        with pytest.raises(ValueError):
            synthetic_digits(5, size=16)

    def test_classes_are_distinguishable(self):
        # Mean images of different digits should differ substantially —
        # otherwise the training substrate would be meaningless.
        ds = synthetic_digits(400, seed=2, noise=0.05)
        means = {
            d: ds.images[ds.labels == d].mean(axis=0)
            for d in (0, 1)
        }
        diff = np.abs(means[0] - means[1]).mean()
        assert diff > 0.02


class TestSyntheticShapes:
    def test_shapes(self):
        ds = synthetic_shapes(8, seed=1)
        assert ds.images.shape == (8, 3, 64, 64)

    def test_value_range(self):
        ds = synthetic_shapes(8, seed=1)
        assert ds.images.min() >= 0.0
        assert ds.images.max() <= 1.0

    def test_colour_schemes_differ(self):
        ds = synthetic_shapes(500, seed=3)
        red_classes = ds.images[ds.labels < 5]
        blue_classes = ds.images[ds.labels >= 5]
        # Red scheme has more energy in channel 0, blue in channel 2.
        assert red_classes[:, 0].mean() > red_classes[:, 2].mean()
        assert blue_classes[:, 2].mean() > blue_classes[:, 0].mean()


class TestLabeledDataset:
    def test_len(self):
        ds = synthetic_digits(15, seed=0)
        assert len(ds) == 15

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            LabeledDataset(
                images=np.zeros((3, 1, 8, 8)), labels=np.zeros(4, dtype=int)
            )

    def test_batches_cover_everything(self):
        ds = synthetic_digits(25, seed=0)
        seen = 0
        for images, labels in ds.batches(8):
            assert images.shape[0] == labels.shape[0]
            seen += images.shape[0]
        assert seen == 25

    def test_shuffled_batches(self):
        ds = synthetic_digits(64, seed=0)
        rng = np.random.default_rng(1)
        first_plain = next(iter(ds.batches(16)))[1]
        first_shuffled = next(iter(ds.batches(16, rng=rng)))[1]
        assert not np.array_equal(first_plain, first_shuffled)
