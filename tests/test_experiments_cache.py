"""Cache layer: hit/miss, invalidation, corruption recovery."""

from __future__ import annotations

import json

from repro.accelerator.config import AcceleratorConfig
from repro.experiments.cache import ResultCache, code_version_tag
from repro.experiments.spec import JobSpec


def make_job(**config_overrides) -> JobSpec:
    kwargs = dict(width=2, height=2, n_mcs=1, max_tasks_per_layer=2)
    kwargs.update(config_overrides)
    return JobSpec(model="lenet", config=AcceleratorConfig(**kwargs))


RECORD = {"job_id": "x", "status": "ok", "result": {"bt": 1}}


class TestHitMiss:
    def test_empty_cache_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get_job(make_job()) is None
        assert not cache.contains(make_job())
        assert len(cache) == 0

    def test_put_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = make_job()
        cache.put_job(job, RECORD)
        assert cache.get_job(job) == RECORD
        assert cache.contains(job)
        assert len(cache) == 1

    def test_hit_across_instances(self, tmp_path):
        job = make_job()
        ResultCache(tmp_path).put_job(job, RECORD)
        assert ResultCache(tmp_path).get_job(job) == RECORD


class TestInvalidation:
    def test_config_change_changes_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_job(make_job(), RECORD)
        assert cache.get_job(make_job(ordering="O2")) is None
        assert cache.get_job(make_job(seed=1)) is None
        assert cache.get_job(make_job(data_format="fixed8")) is None

    def test_workload_change_changes_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = make_job()
        cache.put_job(job, RECORD)
        other = JobSpec(
            model=job.model, config=job.config, image_seed=99
        )
        assert cache.get_job(other) is None

    def test_code_version_change_invalidates(self, tmp_path):
        old = ResultCache(tmp_path, version_tag="aaa")
        old.put_job(make_job(), RECORD)
        new = ResultCache(tmp_path, version_tag="bbb")
        assert new.get_job(make_job()) is None
        # The old entry is untouched — rolling back the code revives it.
        assert old.get_job(make_job()) == RECORD

    def test_default_tag_is_stable_hash(self):
        assert ResultCache("unused").version_tag == code_version_tag()
        assert len(code_version_tag()) == 12


class TestCorruptionRecovery:
    def test_truncated_entry_is_dropped(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = make_job()
        cache.put_job(job, RECORD)
        path = cache._path(cache.key_for(job))
        path.write_text(path.read_text()[:10])  # simulate torn write
        assert cache.get_job(job) is None
        assert cache.corrupt_dropped == 1
        assert not path.exists()
        # A fresh put repairs the entry.
        cache.put_job(job, RECORD)
        assert cache.get_job(job) == RECORD

    def test_non_object_entry_is_dropped(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = make_job()
        key = cache.key_for(job)
        cache.put(key, RECORD)
        cache._path(key).write_text(json.dumps([1, 2, 3]))
        assert cache.get(key) is None
        assert cache.corrupt_dropped == 1


class TestHousekeeping:
    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_job(make_job(), RECORD)
        cache.put_job(make_job(ordering="O1"), RECORD)
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.get_job(make_job()) is None
