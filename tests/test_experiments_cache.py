"""Cache layer: hit/miss, invalidation, corruption recovery,
cross-process claims, and concurrent-writer races."""

from __future__ import annotations

import json
import os
import threading
import time

from repro.accelerator.config import AcceleratorConfig
from repro.experiments.cache import ResultCache, code_version_tag
from repro.experiments.spec import JobSpec


def make_job(**config_overrides) -> JobSpec:
    kwargs = dict(width=2, height=2, n_mcs=1, max_tasks_per_layer=2)
    kwargs.update(config_overrides)
    return JobSpec(model="lenet", config=AcceleratorConfig(**kwargs))


RECORD = {"job_id": "x", "status": "ok", "result": {"bt": 1}}


class TestHitMiss:
    def test_empty_cache_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get_job(make_job()) is None
        assert not cache.contains(make_job())
        assert len(cache) == 0

    def test_put_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = make_job()
        cache.put_job(job, RECORD)
        assert cache.get_job(job) == RECORD
        assert cache.contains(job)
        assert len(cache) == 1

    def test_hit_across_instances(self, tmp_path):
        job = make_job()
        ResultCache(tmp_path).put_job(job, RECORD)
        assert ResultCache(tmp_path).get_job(job) == RECORD


class TestInvalidation:
    def test_config_change_changes_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_job(make_job(), RECORD)
        assert cache.get_job(make_job(ordering="O2")) is None
        assert cache.get_job(make_job(seed=1)) is None
        assert cache.get_job(make_job(data_format="fixed8")) is None

    def test_workload_change_changes_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = make_job()
        cache.put_job(job, RECORD)
        other = JobSpec(
            model=job.model, config=job.config, image_seed=99
        )
        assert cache.get_job(other) is None

    def test_code_version_change_invalidates(self, tmp_path):
        old = ResultCache(tmp_path, version_tag="aaa")
        old.put_job(make_job(), RECORD)
        new = ResultCache(tmp_path, version_tag="bbb")
        assert new.get_job(make_job()) is None
        # The old entry is untouched — rolling back the code revives it.
        assert old.get_job(make_job()) == RECORD

    def test_default_tag_is_stable_hash(self):
        assert ResultCache("unused").version_tag == code_version_tag()
        assert len(code_version_tag()) == 12


class TestCorruptionRecovery:
    def test_truncated_entry_is_dropped(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = make_job()
        cache.put_job(job, RECORD)
        path = cache._path(cache.key_for(job))
        path.write_text(path.read_text()[:10])  # simulate torn write
        assert cache.get_job(job) is None
        assert cache.corrupt_dropped == 1
        assert not path.exists()
        # A fresh put repairs the entry.
        cache.put_job(job, RECORD)
        assert cache.get_job(job) == RECORD

    def test_non_object_entry_is_dropped(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = make_job()
        key = cache.key_for(job)
        cache.put(key, RECORD)
        cache._path(key).write_text(json.dumps([1, 2, 3]))
        assert cache.get(key) is None
        assert cache.corrupt_dropped == 1


class TestClaims:
    def test_claim_is_exclusive_until_released(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.claim("k1") is True
        assert cache.claim("k1") is False
        cache.release_claim("k1")
        assert cache.claim("k1") is True

    def test_release_of_missing_claim_is_fine(self, tmp_path):
        ResultCache(tmp_path).release_claim("never-claimed")

    def test_claims_are_per_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.claim("k1") is True
        assert cache.claim("k2") is True

    def test_claim_visible_across_instances(self, tmp_path):
        # Two ResultCache objects on the same root stand in for two
        # worker processes sharing a cache directory.
        assert ResultCache(tmp_path).claim("k1") is True
        assert ResultCache(tmp_path).claim("k1") is False

    def test_stale_claim_is_stolen(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.claim("k1") is True
        # Age the claim file past the stale window.
        path = cache._claim_path("k1")
        old = time.time() - 1000.0
        os.utime(path, (old, old))
        assert cache.claim("k1", stale_seconds=600.0) is True

    def test_fresh_claim_is_not_stolen(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.claim("k1") is True
        assert cache.claim("k1", stale_seconds=600.0) is False

    def test_exactly_one_of_many_claimants_wins(self, tmp_path):
        # The O_CREAT|O_EXCL race: N threads claim the same key at
        # once; exactly one may win.
        cache = ResultCache(tmp_path)
        wins = []
        barrier = threading.Barrier(8)

        def claimant():
            barrier.wait()
            if cache.claim("hot-key"):
                wins.append(threading.get_ident())

        threads = [threading.Thread(target=claimant) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1


class TestConcurrentWriters:
    def test_racing_writers_leave_one_valid_entry(self, tmp_path):
        # Atomic temp-then-rename: many writers hammer the same key
        # with different records; the survivor must be one of them,
        # whole, and digest-clean — never an interleaved hybrid.
        cache = ResultCache(tmp_path)
        job = make_job()
        key = cache.key_for(job)
        records = [
            {"job_id": "x", "status": "ok", "result": {"writer": i}}
            for i in range(8)
        ]
        barrier = threading.Barrier(8)

        def writer(i):
            barrier.wait()
            for _ in range(25):
                cache.put(key, records[i])

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        final = cache.get(key)
        assert final in records
        assert cache.corrupt_dropped == 0
        report = cache.verify()
        assert (report["checked"], report["ok"]) == (1, 1)
        assert report["corrupt"] == []

    def test_reader_races_writer_without_serving_garbage(self, tmp_path):
        # Verify-on-read vs a concurrent writer: every successful get
        # must return a complete record, and the entry must never be
        # quarantined by the race itself (rename is atomic).
        cache = ResultCache(tmp_path)
        key = "deadbeef" * 8
        records = [
            {"job_id": "x", "status": "ok", "result": {"v": i}}
            for i in range(4)
        ]
        cache.put(key, records[0])
        stop = threading.Event()
        served: list[dict] = []

        def writer():
            i = 0
            while not stop.is_set():
                cache.put(key, records[i % len(records)])
                i += 1

        def reader():
            while not stop.is_set():
                record = cache.get(key)
                if record is not None:
                    served.append(record)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for t in threads:
            t.start()
        time.sleep(0.5)
        stop.set()
        for t in threads:
            t.join()
        assert served
        assert all(r in records for r in served)
        assert cache.corrupt_dropped == 0


class TestVerifySweep:
    def test_verify_reports_clean_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_job(make_job(), RECORD)
        cache.put_job(make_job(ordering="O1"), RECORD)
        report = cache.verify()
        assert report["root"] == str(tmp_path)
        assert (report["checked"], report["ok"]) == (2, 2)
        assert report["corrupt"] == []
        assert report["quarantined"] == []

    def test_verify_quarantines_corrupt_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        good, bad = make_job(), make_job(ordering="O1")
        cache.put_job(good, RECORD)
        cache.put_job(bad, RECORD)
        victim = cache._path(cache.key_for(bad))
        # Flip a byte inside the record body: still valid JSON, wrong
        # digest — exactly what only the envelope check can catch.
        text = victim.read_text().replace('"bt": 1', '"bt": 7')
        victim.write_text(text)
        report = cache.verify()
        assert report["ok"] == 1
        assert report["corrupt"] == [
            str(victim.relative_to(tmp_path))
        ]
        assert not victim.exists()
        assert len(report["quarantined"]) == 1
        assert report["quarantined"][0].endswith(".corrupt")
        # The good entry still serves; the bad one re-simulates.
        assert cache.get_job(good) == RECORD
        assert cache.get_job(bad) is None

    def test_verify_without_quarantine_only_reports(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = make_job()
        cache.put_job(job, RECORD)
        victim = cache._path(cache.key_for(job))
        victim.write_text("not json")
        report = cache.verify(quarantine=False)
        assert len(report["corrupt"]) == 1
        assert victim.exists()  # left in place for inspection
        assert cache.quarantined() == []

    def test_legacy_entries_counted_not_flagged(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" * 32
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps(RECORD))  # pre-envelope format
        report = cache.verify()
        assert (report["legacy"], report["ok"]) == (1, 0)
        assert report["corrupt"] == []

    def test_quarantined_listing(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = make_job()
        cache.put_job(job, RECORD)
        victim = cache._path(cache.key_for(job))
        victim.write_text("garbage")
        cache.verify()
        names = cache.quarantined()
        assert names == [victim.name + ".corrupt"]


class TestHousekeeping:
    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_job(make_job(), RECORD)
        cache.put_job(make_job(ordering="O1"), RECORD)
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.get_job(make_job()) is None
