"""Tests for repro.analysis.distribution (Fig. 10/11 statistics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.distribution import (
    BitPositionStats,
    analyze_stream,
    bit_one_probability,
)
from repro.bits.formats import Float32Format


class TestBitOneProbability:
    def test_all_zero(self):
        words = np.zeros(10, dtype=np.uint8)
        np.testing.assert_array_equal(bit_one_probability(words, 8), 0.0)

    def test_all_ones(self):
        words = np.full(10, 0xFF, dtype=np.uint8)
        np.testing.assert_array_equal(bit_one_probability(words, 8), 1.0)

    def test_msb_first(self):
        words = np.array([0x80], dtype=np.uint8)
        probs = bit_one_probability(words, 8)
        assert probs[0] == 1.0
        assert probs[1:].sum() == 0.0

    def test_empty_stream(self):
        probs = bit_one_probability(np.array([], dtype=np.uint8), 8)
        np.testing.assert_array_equal(probs, 0.0)

    def test_uniform_random_near_half(self, rng):
        words = rng.integers(0, 2**16, size=5000).astype(np.uint16)
        probs = bit_one_probability(words, 16)
        assert np.all(np.abs(probs - 0.5) < 0.05)


class TestAnalyzeStream:
    def test_mean_popcount_consistency(self, rng):
        words = rng.integers(0, 2**8, size=500).astype(np.uint8)
        stats = analyze_stream(words, 8)
        from repro.bits.popcount import popcount_array

        assert stats.mean_popcount == pytest.approx(
            popcount_array(words).mean()
        )

    def test_float32_field_structure(self, rng):
        # Weights in (-0.5, 0.5): sign ~0.5, exponent top bits biased.
        values = rng.uniform(-0.5, 0.5, 20000).astype(np.float32)
        words = Float32Format().encode(values)
        stats = analyze_stream(words, 32)
        fields = stats.describe_float32_fields()
        assert abs(fields["sign"] - 0.5) < 0.02
        # Exponent of values < 1.0 starts 0 111 111x -> high '1' density.
        assert fields["exponent"] > 0.6
        # Mantissa is near uniform for generic reals.
        assert abs(fields["mantissa"] - 0.5) < 0.05

    def test_field_breakdown_requires_width_32(self):
        stats = analyze_stream(np.zeros(4, dtype=np.uint8), 8)
        with pytest.raises(ValueError):
            stats.describe_float32_fields()

    def test_transition_probability_lower_after_sorting(self, rng):
        # Ordering reduces the per-position transition curve (Fig. 10
        # bottom: orange below blue).
        from repro.bits.popcount import popcount_array

        values = np.where(
            rng.random(20000) < 0.3, 0.0, rng.normal(0, 0.1, 20000)
        ).astype(np.float32)
        words = Float32Format().encode(values)
        base = analyze_stream(words, 32)
        counts = popcount_array(words)
        ordered_words = words[np.argsort(-counts.astype(np.int64))]
        ordered = analyze_stream(ordered_words, 32)
        assert (
            ordered.transition_probability.sum()
            < base.transition_probability.sum()
        )

    def test_is_dataclass_with_width(self):
        stats = analyze_stream(np.zeros(4, dtype=np.uint8), 8)
        assert isinstance(stats, BitPositionStats)
        assert stats.width == 8
        assert stats.one_probability.shape == (8,)
        assert stats.transition_probability.shape == (8,)
