"""Tests for repro.noc.flit."""

from __future__ import annotations

import pytest

from repro.noc.flit import FlitType, make_packet


class TestFlitType:
    def test_head_properties(self):
        assert FlitType.HEAD.is_head
        assert not FlitType.HEAD.is_tail

    def test_head_tail_is_both(self):
        assert FlitType.HEAD_TAIL.is_head
        assert FlitType.HEAD_TAIL.is_tail

    def test_body_is_neither(self):
        assert not FlitType.BODY.is_head
        assert not FlitType.BODY.is_tail


class TestMakePacket:
    def test_single_flit(self):
        pkt = make_packet(0, 5, [0xAB], 64)
        assert len(pkt) == 1
        assert pkt.flits[0].flit_type is FlitType.HEAD_TAIL

    def test_multi_flit_types(self):
        pkt = make_packet(0, 5, [1, 2, 3, 4], 64)
        types = [f.flit_type for f in pkt.flits]
        assert types == [
            FlitType.HEAD,
            FlitType.BODY,
            FlitType.BODY,
            FlitType.TAIL,
        ]

    def test_unique_ids(self):
        a = make_packet(0, 1, [0], 8)
        b = make_packet(0, 1, [0], 8)
        assert a.packet_id != b.packet_id

    def test_payload_too_wide(self):
        with pytest.raises(ValueError):
            make_packet(0, 1, [1 << 64], 64)

    def test_negative_payload(self):
        with pytest.raises(ValueError):
            make_packet(0, 1, [-1], 64)

    def test_empty_packet_rejected(self):
        with pytest.raises(ValueError):
            make_packet(0, 1, [], 64)

    def test_metadata_copied(self):
        meta = {"kind": "task"}
        pkt = make_packet(0, 1, [0], 8, metadata=meta)
        meta["kind"] = "mutated"
        assert pkt.metadata["kind"] == "task"

    def test_latency_requires_completion(self):
        pkt = make_packet(0, 1, [0], 8)
        with pytest.raises(ValueError):
            _ = pkt.latency
        pkt.created_cycle = 3
        pkt.delivered_cycle = 10
        assert pkt.latency == 7


class TestWireBits:
    def test_payload_only_by_default(self):
        pkt = make_packet(0, 5, [0xAB], 16)
        assert pkt.flits[0].wire_bits() == 0xAB

    def test_header_adds_destination(self):
        pkt = make_packet(0, 5, [0xAB], 16)
        wired = pkt.flits[0].wire_bits(include_header=True)
        header = wired >> 16
        assert header >> 2 == 5  # destination field
        assert header & 0b11 == 3  # HEAD_TAIL code

    def test_header_flit_types_distinct(self):
        pkt = make_packet(0, 5, [0, 0, 0], 16)
        codes = {
            f.wire_bits(include_header=True) & (0b11 << 16)
            for f in pkt.flits
        }
        assert len(codes) == 3  # HEAD, BODY, TAIL all differ
