"""Tests for repro.bits.formats."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bits.formats import Fixed8Format, Float32Format, format_by_name


class TestFloat32Format:
    def test_width(self):
        assert Float32Format().width == 32

    def test_zero_encodes_to_zero_word(self):
        fmt = Float32Format()
        assert fmt.encode(np.array([0.0]))[0] == 0

    def test_sign_bit_is_msb(self):
        fmt = Float32Format()
        word = int(fmt.encode(np.array([-1.0]))[0])
        assert word >> 31 == 1

    def test_one_has_known_pattern(self):
        fmt = Float32Format()
        assert int(fmt.encode(np.array([1.0]))[0]) == 0x3F800000

    @given(
        st.floats(
            min_value=-1e6,
            max_value=1e6,
            allow_nan=False,
            width=32,
        )
    )
    def test_round_trip(self, value):
        fmt = Float32Format()
        arr = np.array([value], dtype=np.float32)
        decoded = fmt.decode(fmt.encode(arr))
        np.testing.assert_array_equal(decoded, arr)

    def test_batch_round_trip(self, rng):
        fmt = Float32Format()
        values = rng.normal(0, 1, 100).astype(np.float32)
        np.testing.assert_array_equal(fmt.decode(fmt.encode(values)), values)


class TestFixed8Format:
    def test_width(self):
        assert Fixed8Format().width == 8

    def test_zero(self):
        fmt = Fixed8Format(scale=0.01)
        assert fmt.encode(np.array([0.0]))[0] == 0

    def test_negative_is_twos_complement(self):
        fmt = Fixed8Format(scale=1.0)
        assert int(fmt.encode(np.array([-1.0]))[0]) == 0xFF

    def test_clipping_at_bounds(self):
        fmt = Fixed8Format(scale=1.0)
        words = fmt.encode(np.array([1000.0, -1000.0]))
        codes = words.view(np.int8)
        assert codes[0] == 127
        assert codes[1] == -128

    def test_round_trip_representable(self):
        fmt = Fixed8Format(scale=0.5)
        values = np.array([-64.0, -0.5, 0.0, 0.5, 63.5])
        decoded = fmt.decode(fmt.encode(values))
        np.testing.assert_allclose(decoded, values)

    def test_quantisation_error_bounded(self, rng):
        fmt = Fixed8Format(scale=0.01)
        values = rng.uniform(-1.2, 1.2, 200)
        decoded = fmt.decode(fmt.encode(values))
        in_range = np.abs(values) <= 127 * 0.01
        err = np.abs(decoded[in_range] - values[in_range])
        assert err.max() <= 0.005 + 1e-9  # half a step

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            Fixed8Format(scale=0.0)

    def test_with_scale(self):
        fmt = Fixed8Format().with_scale(0.25)
        assert fmt.scale == 0.25


class TestFormatByName:
    def test_float32(self):
        assert format_by_name("float32").name == "float32"

    def test_fixed8_with_scale(self):
        fmt = format_by_name("fixed8", scale=0.125)
        assert isinstance(fmt, Fixed8Format)
        assert fmt.scale == 0.125

    def test_float32_rejects_scale(self):
        with pytest.raises(ValueError):
            format_by_name("float32", scale=1.0)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            format_by_name("bfloat16")
