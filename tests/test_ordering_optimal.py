"""Tests for repro.ordering.optimal."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ordering.optimal import (
    all_matchings,
    exhaustive_best_assignment,
    interleaved_assignment,
    pair_product,
)

counts = st.lists(
    st.integers(min_value=0, max_value=32), min_size=2, max_size=10
).filter(lambda xs: len(xs) % 2 == 0)


class TestPairProduct:
    def test_basic(self):
        assert pair_product([2, 3], [4, 5]) == 23

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pair_product([1], [1, 2])


class TestInterleavedAssignment:
    def test_two_values(self):
        result = interleaved_assignment([3, 7])
        assert result.flit1 == (7,)
        assert result.flit2 == (3,)
        assert result.objective == 21

    def test_paper_interleaving(self):
        # x1 >= y1 >= x2 >= y2 ...
        result = interleaved_assignment([1, 8, 3, 6])
        assert result.flit1 == (8, 3)
        assert result.flit2 == (6, 1)

    def test_odd_count_rejected(self):
        with pytest.raises(ValueError):
            interleaved_assignment([1, 2, 3])

    @given(counts)
    def test_multiset_preserved(self, values):
        result = interleaved_assignment(values)
        assert sorted(result.flit1 + result.flit2) == sorted(values)


class TestAllMatchings:
    def test_counts(self):
        # (2N)! / (N! 2^N): N=2 -> 3, N=3 -> 15.
        assert len(list(all_matchings([1, 2, 3, 4]))) == 3
        assert len(list(all_matchings([1, 2, 3, 4, 5, 6]))) == 15

    def test_empty(self):
        assert list(all_matchings([])) == [[]]

    def test_every_matching_is_perfect(self):
        items = [1, 2, 3, 4]
        for matching in all_matchings(items):
            flat = sorted(v for pair in matching for v in pair)
            assert flat == items


class TestExhaustiveSearch:
    def test_limit(self):
        with pytest.raises(ValueError):
            exhaustive_best_assignment(list(range(14)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            exhaustive_best_assignment([])

    @settings(deadline=None, max_examples=40)
    @given(counts)
    def test_interleaved_is_globally_optimal(self, values):
        """The paper's Sec. III-B claim: count-based ordering maximises F."""
        greedy = interleaved_assignment(values)
        brute = exhaustive_best_assignment(values)
        assert greedy.objective == brute.objective

    @settings(deadline=None, max_examples=20)
    @given(counts)
    def test_no_matching_beats_interleaved(self, values):
        greedy = interleaved_assignment(values)
        for matching in all_matchings(values):
            objective = sum(a * b for a, b in matching)
            assert objective <= greedy.objective
