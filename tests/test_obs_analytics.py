"""Trace analytics: heat, attribution, burstiness, stats.

The golden fixture (``tests/data/golden_lenet_fixed8_O0.trace.gz``)
pins the heavy assertions tolerance-free: bucketed heat must re-sum to
the exact pinned per-link BT table, and owner attribution must account
for every transition.  Hand-computed micro-traces pin the bucketing
arithmetic itself.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.bits.transitions import stream_transitions
from repro.obs.analytics import (
    DEFAULT_WINDOW,
    bt_by_owner,
    burstiness,
    hop_transitions,
    link_heat,
    link_utilisation,
    trace_span,
    trace_stats,
)
from repro.workloads.traces import PacketEvent, TrafficTrace

GOLDEN_TRACE = (
    pathlib.Path(__file__).parent
    / "data"
    / "golden_lenet_fixed8_O0.trace.gz"
)
GOLDEN_TRACE_TOTAL_BT = 37510
GOLDEN_TRACE_FLIT_HOPS = 870
GOLDEN_TRACE_PACKETS = 74
GOLDEN_TRACE_SPAN = 294


@pytest.fixture(scope="module")
def golden() -> TrafficTrace:
    return TrafficTrace.load(GOLDEN_TRACE)


def micro_trace() -> TrafficTrace:
    """2-bit link, three hops at cycles 0/5/9.

    Hop 1 (cycle 5): 0b11 -> 0b01, 1 transition.
    Hop 2 (cycle 9): 0b01 -> 0b01, 0 transitions.
    """
    return TrafficTrace(
        link_width=2,
        links={"R0.EAST": (0b11, 0b01, 0b01), "R1.EAST": ()},
        cycles={"R0.EAST": (0, 5, 9), "R1.EAST": ()},
        packet_ids={"R0.EAST": (7, 7, 8), "R1.EAST": ()},
    )


class TestHopTransitions:
    def test_matches_scalar_scorer_narrow(self):
        rng = np.random.default_rng(3)
        payloads = tuple(
            int(x) for x in rng.integers(0, 2**64, 150, dtype=np.uint64)
        )
        bts = hop_transitions(payloads, 64)
        assert len(bts) == len(payloads) - 1
        assert int(bts.sum()) == stream_transitions(payloads)

    def test_matches_scalar_scorer_wide(self):
        rng = np.random.default_rng(4)
        payloads = tuple(
            int(a) << 64 | int(b)
            for a, b in zip(
                rng.integers(0, 2**64, 40, dtype=np.uint64),
                rng.integers(0, 2**64, 40, dtype=np.uint64),
            )
        )
        bts = hop_transitions(payloads, 128)
        assert int(bts.sum()) == stream_transitions(payloads)

    def test_header_bits_beyond_link_width_fall_back(self):
        # Wire images can carry header bits above the nominal width;
        # the <u8 fast path overflows and the byte-exact path takes
        # over without changing the count.
        payloads = (2**70 | 0b1, 2**70 | 0b10)
        bts = hop_transitions(payloads, 64)
        assert int(bts.sum()) == stream_transitions(payloads)

    def test_fewer_than_two_hops_is_empty(self):
        assert hop_transitions((), 64).size == 0
        assert hop_transitions((42,), 64).size == 0


class TestTraceSpan:
    def test_empty_trace_spans_zero(self):
        assert trace_span(TrafficTrace(link_width=8, links={})) == 0

    def test_span_is_one_past_last_cycle(self):
        assert trace_span(micro_trace()) == 10

    def test_packet_injections_extend_span(self):
        trace = TrafficTrace(
            link_width=8,
            links={},
            packets=(
                PacketEvent(cycle=25, src=0, dst=1, payloads=(1,)),
            ),
        )
        assert trace_span(trace) == 26

    def test_golden_span(self, golden):
        assert trace_span(golden) == GOLDEN_TRACE_SPAN


class TestLinkHeat:
    def test_micro_trace_buckets_exact(self):
        heat = link_heat(micro_trace(), window=4)
        assert heat.n_windows == 3
        assert heat.heat["R0.EAST"] == (0, 1, 0)
        assert heat.flits["R0.EAST"] == (1, 1, 1)
        assert heat.heat["R1.EAST"] == (0, 0, 0)
        assert heat.window_totals() == (0, 1, 0)
        assert heat.hottest() == [("R0.EAST", 1, 1)]

    def test_golden_heat_resums_to_pinned_table(self, golden):
        heat = link_heat(golden)
        assert heat.totals() == golden.per_link_transitions()
        assert sum(heat.window_totals()) == GOLDEN_TRACE_TOTAL_BT
        assert heat.n_windows == -(-GOLDEN_TRACE_SPAN // DEFAULT_WINDOW)

    def test_window_width_never_changes_totals(self, golden):
        for window in (1, 7, 64, 1024):
            heat = link_heat(golden, window)
            assert sum(heat.window_totals()) == GOLDEN_TRACE_TOTAL_BT

    def test_rejects_bad_window(self, golden):
        with pytest.raises(ValueError, match="window must be >= 1"):
            link_heat(golden, 0)

    def test_rejects_untimed_trace(self):
        untimed = TrafficTrace(link_width=8, links={"L": (1, 2, 3)})
        with pytest.raises(ValueError, match="no per-hop cycles"):
            link_heat(untimed)


class TestBtByOwner:
    def test_micro_trace_attribution(self):
        # Hop 1 (1 BT) belongs to packet 7; hop 2 (0 BTs) to packet 8.
        assert bt_by_owner(micro_trace()) == {7: 1}

    def test_golden_attribution_accounts_for_every_bt(self, golden):
        owners = bt_by_owner(golden)
        assert sum(owners.values()) == GOLDEN_TRACE_TOTAL_BT
        assert all(pid >= 0 for pid in owners)
        assert len(owners) <= GOLDEN_TRACE_PACKETS

    def test_rejects_traces_without_packet_ids(self):
        anonymous = TrafficTrace(
            link_width=8,
            links={"L": (1, 2)},
            cycles={"L": (0, 1)},
        )
        with pytest.raises(ValueError, match="no per-hop packet ids"):
            bt_by_owner(anonymous)


class TestBurstinessAndUtilisation:
    def test_uniform_traffic_has_zero_burstiness(self):
        trace = TrafficTrace(
            link_width=8,
            links={"L": tuple(range(8))},
            cycles={"L": tuple(range(8))},
        )
        assert burstiness(trace, window=1)["L"] == 0.0

    def test_bursty_traffic_is_positive(self):
        trace = TrafficTrace(
            link_width=8,
            links={"L": (1, 2, 3, 4)},
            cycles={"L": (0, 0, 0, 9)},
        )
        assert burstiness(trace, window=1)["L"] > 0.0

    def test_idle_link_reports_zero(self):
        trace = TrafficTrace(
            link_width=8, links={"L": ()}, cycles={"L": ()}
        )
        assert burstiness(trace)["L"] == 0.0

    def test_utilisation_is_hops_over_span(self):
        util = link_utilisation(micro_trace())
        assert util["R0.EAST"] == pytest.approx(3 / 10)
        assert util["R1.EAST"] == 0.0

    def test_empty_trace_utilisation_is_zero(self):
        trace = TrafficTrace(link_width=8, links={"L": ()})
        assert link_utilisation(trace) == {"L": 0.0}


class TestTraceStats:
    def test_golden_summary_pins(self, golden):
        stats = trace_stats(golden)
        assert stats.total_bts == GOLDEN_TRACE_TOTAL_BT
        assert stats.flit_hops == GOLDEN_TRACE_FLIT_HOPS
        assert stats.packets == GOLDEN_TRACE_PACKETS
        assert stats.span_cycles == GOLDEN_TRACE_SPAN
        assert stats.replayable
        assert stats.links == 25
        assert stats.active_links == 25
        assert stats.peak_link == "R6.EAST"
        assert stats.peak_link_bts == 9344
        assert stats.per_link == golden.per_link_transitions()

    def test_lines_render_the_headlines(self, golden):
        text = "\n".join(trace_stats(golden).lines())
        assert f"total BTs         : {GOLDEN_TRACE_TOTAL_BT}" in text
        assert "(replayable)" in text
        assert "hottest link      : R6.EAST (9344 BTs)" in text

    def test_micro_trace_stats(self):
        stats = trace_stats(micro_trace())
        assert stats.total_bts == 1
        assert stats.flit_hops == 3
        assert stats.active_links == 1
        assert stats.links == 2
        assert not stats.replayable
        assert stats.peak_link == "R0.EAST"
