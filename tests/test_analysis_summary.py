"""Tests for repro.analysis.summary."""

from __future__ import annotations

import pytest

from repro.analysis.summary import (
    ReductionRow,
    format_series,
    format_table,
    reduction_rate,
)


class TestReductionRate:
    def test_paper_table1_row(self):
        # Float-32 random: 113.27 -> 90.18 should be 20.38 %.
        assert reduction_rate(113.27, 90.18) == pytest.approx(20.38, abs=0.01)

    def test_no_change(self):
        assert reduction_rate(100.0, 100.0) == 0.0

    def test_zero_baseline(self):
        assert reduction_rate(0.0, 0.0) == 0.0

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            reduction_rate(-1.0, 0.0)

    def test_increase_is_negative(self):
        assert reduction_rate(100.0, 110.0) == pytest.approx(-10.0)


class TestFormatting:
    def test_table_contains_rows(self):
        rows = [
            ReductionRow("Float-32 random", 256, 113.27, 90.18),
            ReductionRow("Fixed-8 trained", 64, 30.55, 13.73),
        ]
        text = format_table(rows, "Table I")
        assert "Table I" in text
        assert "Float-32 random" in text
        assert "20.38%" in text
        assert "55.06%" in text or "55.0" in text  # 30.55 -> 13.73

    def test_reduction_property(self):
        row = ReductionRow("x", 64, 30.55, 13.73)
        assert row.reduction == pytest.approx(55.06, abs=0.01)

    def test_series_grid(self):
        series = {
            "4x4 MC2": {"O0": 100.0, "O1": 85.0, "O2": 70.0},
            "8x8 MC4": {"O0": 200.0, "O1": 170.0},
        }
        text = format_series(series, "Fig. 12")
        assert "Fig. 12" in text
        assert "4x4 MC2" in text
        assert "O2" in text
        assert "nan" in text  # missing O2 for the second config
