"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dnn.datasets import synthetic_digits
from repro.dnn.models import LeNet5
from repro.workloads.figures import (
    figure_darknet_image,
    figure_darknet_model,
    figure_lenet_image,
    figure_trained_lenet,
)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_lenet() -> LeNet5:
    """An untrained LeNet with a fixed seed."""
    return LeNet5(rng=np.random.default_rng(42))


@pytest.fixture(scope="session")
def digit_image() -> np.ndarray:
    """One 32x32x1 sample image."""
    return synthetic_digits(1, seed=9).images[0]


# -- golden-figure workloads (one definition, repro.workloads.figures,
# -- shared with benchmarks/conftest.py so the two cannot drift) --------


@pytest.fixture(scope="session")
def golden_trained_lenet():
    return figure_trained_lenet()


@pytest.fixture(scope="session")
def golden_lenet_image() -> np.ndarray:
    return figure_lenet_image()


@pytest.fixture(scope="session")
def golden_darknet_model():
    return figure_darknet_model()


@pytest.fixture(scope="session")
def golden_darknet_image() -> np.ndarray:
    return figure_darknet_image()
