"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dnn.datasets import synthetic_digits
from repro.dnn.models import LeNet5


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_lenet() -> LeNet5:
    """An untrained LeNet with a fixed seed."""
    return LeNet5(rng=np.random.default_rng(42))


@pytest.fixture(scope="session")
def digit_image() -> np.ndarray:
    """One 32x32x1 sample image."""
    return synthetic_digits(1, seed=9).images[0]
