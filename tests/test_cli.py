"""Tests for the repro CLI."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_noc_defaults(self):
        args = build_parser().parse_args(["run-noc"])
        assert args.model == "lenet"
        assert args.ordering == "O2"
        assert args.mesh == "4x4"

    def test_bad_mesh_string(self):
        with pytest.raises(SystemExit):
            main(["run-noc", "--mesh", "four-by-four", "--tasks", "1"])


class TestCommands:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "12.910" in out
        assert "Router" in out

    def test_link_power(self, capsys):
        assert main(["link-power"]) == 0
        out = capsys.readouterr().out
        assert "155.008" in out
        assert "476.672" in out

    def test_no_noc_small(self, capsys):
        code = main(
            ["no-noc", "--format", "fixed8", "--packets", "200"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "reduction" in out
        assert "fixed8" in out

    def test_traffic(self, capsys):
        code = main(
            ["traffic", "--pattern", "complement", "--packets", "30"]
        )
        assert code == 0
        assert "30 packets" in capsys.readouterr().out

    def test_run_noc_compare(self, capsys):
        code = main(
            [
                "run-noc",
                "--tasks",
                "2",
                "--ordering",
                "O1",
                "--compare",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "O0" in out
        assert "reduction" in out
