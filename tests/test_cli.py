"""Tests for the repro CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_noc_defaults(self):
        args = build_parser().parse_args(["run-noc"])
        assert args.model == "lenet"
        assert args.ordering == "O2"
        assert args.mesh == "4x4"

    def test_bad_mesh_string(self):
        with pytest.raises(SystemExit):
            main(["run-noc", "--mesh", "four-by-four", "--tasks", "1"])


class TestCommands:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "12.910" in out
        assert "Router" in out

    def test_link_power(self, capsys):
        assert main(["link-power"]) == 0
        out = capsys.readouterr().out
        assert "155.008" in out
        assert "476.672" in out

    def test_no_noc_small(self, capsys):
        code = main(
            ["no-noc", "--format", "fixed8", "--packets", "200"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "reduction" in out
        assert "fixed8" in out

    def test_traffic(self, capsys):
        code = main(
            ["traffic", "--pattern", "complement", "--packets", "30"]
        )
        assert code == 0
        assert "30 packets" in capsys.readouterr().out

    def test_run_noc_compare(self, capsys):
        code = main(
            [
                "run-noc",
                "--tasks",
                "2",
                "--ordering",
                "O1",
                "--compare",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "O0" in out
        assert "reduction" in out


class TestSeedPlumbing:
    RUN_NOC = ["run-noc", "--mesh", "2x2", "--mcs", "1", "--tasks", "1"]

    def _run(self, capsys, argv):
        assert main(argv) == 0
        return capsys.readouterr().out

    def test_run_noc_seed_reproducible(self, capsys):
        a = self._run(capsys, [*self.RUN_NOC, "--seed", "7"])
        b = self._run(capsys, [*self.RUN_NOC, "--seed", "7"])
        assert a == b

    def test_run_noc_seed_changes_workload(self, capsys):
        a = self._run(capsys, [*self.RUN_NOC, "--seed", "7"])
        b = self._run(capsys, [*self.RUN_NOC, "--seed", "8"])
        assert a != b

    def test_run_noc_default_matches_legacy(self, capsys):
        # Omitting --seed keeps the historical hard-coded seeds.
        a = self._run(capsys, self.RUN_NOC)
        b = self._run(capsys, self.RUN_NOC)
        assert a == b

    def test_traffic_seed(self, capsys):
        base = ["traffic", "--pattern", "uniform", "--packets", "20"]
        a = self._run(capsys, [*base, "--seed", "1"])
        b = self._run(capsys, [*base, "--seed", "1"])
        c = self._run(capsys, [*base, "--seed", "2"])
        assert a == b
        assert a != c

    def test_no_noc_seed(self, capsys):
        base = ["no-noc", "--format", "fixed8", "--packets", "50"]
        a = self._run(capsys, [*base, "--seed", "1"])
        b = self._run(capsys, [*base, "--seed", "2"])
        assert a != b

    def test_arithmetic_commands_accept_seed(self, capsys):
        assert main(["table2", "--seed", "3"]) == 0
        assert main(["link-power", "--seed", "3"]) == 0


class TestSweepAndReport:
    SWEEP = [
        "sweep",
        "--meshes", "2x2:1",
        "--orderings", "O0,O2",
        "--tasks", "1",
        "--workers", "1",
    ]

    def test_sweep_cold_then_cached_then_report(self, tmp_path, capsys):
        argv = [
            *self.SWEEP,
            "--cache-dir", str(tmp_path / "cache"),
            "--store", str(tmp_path / "runs.jsonl"),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "0 cache hits / 2 simulated" in cold
        assert "Absolute BTs (fixed8)" in cold

        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "2 cache hits / 0 simulated" in warm
        assert "100.0% hit rate" in warm

        assert main(["report", "--store", str(tmp_path / "runs.jsonl")]) == 0
        report = capsys.readouterr().out
        assert "Absolute BTs (fixed8)" in report
        assert "2x2 MC1" in report

    def test_sweep_seed_varies_workload(self, tmp_path, capsys):
        def run(seed):
            argv = [
                *self.SWEEP,
                "--cache-dir", str(tmp_path / f"cache{seed}"),
                "--store", str(tmp_path / f"runs{seed}.jsonl"),
                "--seed", str(seed),
            ]
            assert main(argv) == 0
            return capsys.readouterr().out

        # Different seeds must change the simulated workload (model
        # init + image + task sampling all derive from --seed).
        assert run(1) != run(2)

    def test_sweep_spec_file_honors_seed_override(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "name": "fromfile",
            "base": {"max_tasks_per_layer": 1},
            "axes": {"mesh": ["2x2:1"], "ordering": ["O0"]},
            "seed": 0,
        }))
        argv = [
            "sweep", "--spec", str(spec), "--workers", "1",
            "--cache-dir", str(tmp_path / "cache"),
            "--store", str(tmp_path / "runs.jsonl"),
        ]
        assert main(argv) == 0
        base = capsys.readouterr().out
        assert main([*argv, "--seed", "9"]) == 0
        reseeded = capsys.readouterr().out
        assert "0 cache hits" in reseeded  # new seed = new points
        assert base != reseeded

    def test_sweep_bad_spec_file_is_clean_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        with pytest.raises(SystemExit, match="bad sweep spec file"):
            main(["sweep", "--spec", str(missing)])
        bad_key = tmp_path / "bad.json"
        bad_key.write_text('{"nme": "typo"}')
        with pytest.raises(SystemExit, match="bad sweep spec file"):
            main(["sweep", "--spec", str(bad_key)])

    def test_sweep_bad_grid_is_clean_error(self):
        with pytest.raises(SystemExit, match="bad sweep grid"):
            main(["sweep", "--meshes", "4by4"])
        with pytest.raises(SystemExit, match="bad sweep grid"):
            main(["sweep", "--meshes", "2x2:1", "--orderings", "O9"])

    def test_sweep_csv_export(self, tmp_path, capsys):
        argv = [
            *self.SWEEP,
            "--cache-dir", str(tmp_path / "cache"),
            "--store", str(tmp_path / "runs.jsonl"),
            "--csv", str(tmp_path / "out.csv"),
        ]
        assert main(argv) == 0
        assert (tmp_path / "out.csv").read_text().count("\n") == 3

    def test_report_missing_store(self, tmp_path, capsys):
        assert main(["report", "--store", str(tmp_path / "no.jsonl")]) == 1
