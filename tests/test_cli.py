"""Tests for the repro CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments.store import ResultStore


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_noc_defaults(self):
        args = build_parser().parse_args(["run-noc"])
        assert args.model == "lenet"
        assert args.ordering == "O2"
        assert args.mesh == "4x4"

    def test_bad_mesh_string(self):
        with pytest.raises(SystemExit):
            main(["run-noc", "--mesh", "four-by-four", "--tasks", "1"])


class TestCommands:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "12.910" in out
        assert "Router" in out

    def test_link_power(self, capsys):
        assert main(["link-power"]) == 0
        out = capsys.readouterr().out
        assert "155.008" in out
        assert "476.672" in out

    def test_no_noc_small(self, capsys):
        code = main(
            ["no-noc", "--format", "fixed8", "--packets", "200"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "reduction" in out
        assert "fixed8" in out

    def test_traffic(self, capsys):
        code = main(
            ["traffic", "--pattern", "complement", "--packets", "30"]
        )
        assert code == 0
        assert "30 packets" in capsys.readouterr().out

    def test_run_noc_compare(self, capsys):
        code = main(
            [
                "run-noc",
                "--tasks",
                "2",
                "--ordering",
                "O1",
                "--compare",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "O0" in out
        assert "reduction" in out


class TestSeedPlumbing:
    RUN_NOC = ["run-noc", "--mesh", "2x2", "--mcs", "1", "--tasks", "1"]

    def _run(self, capsys, argv):
        assert main(argv) == 0
        return capsys.readouterr().out

    def test_run_noc_seed_reproducible(self, capsys):
        a = self._run(capsys, [*self.RUN_NOC, "--seed", "7"])
        b = self._run(capsys, [*self.RUN_NOC, "--seed", "7"])
        assert a == b

    def test_run_noc_seed_changes_workload(self, capsys):
        a = self._run(capsys, [*self.RUN_NOC, "--seed", "7"])
        b = self._run(capsys, [*self.RUN_NOC, "--seed", "8"])
        assert a != b

    def test_run_noc_default_matches_legacy(self, capsys):
        # Omitting --seed keeps the historical hard-coded seeds.
        a = self._run(capsys, self.RUN_NOC)
        b = self._run(capsys, self.RUN_NOC)
        assert a == b

    def test_traffic_seed(self, capsys):
        base = ["traffic", "--pattern", "uniform", "--packets", "20"]
        a = self._run(capsys, [*base, "--seed", "1"])
        b = self._run(capsys, [*base, "--seed", "1"])
        c = self._run(capsys, [*base, "--seed", "2"])
        assert a == b
        assert a != c

    def test_no_noc_seed(self, capsys):
        base = ["no-noc", "--format", "fixed8", "--packets", "50"]
        a = self._run(capsys, [*base, "--seed", "1"])
        b = self._run(capsys, [*base, "--seed", "2"])
        assert a != b

    def test_arithmetic_commands_accept_seed(self, capsys):
        assert main(["table2", "--seed", "3"]) == 0
        assert main(["link-power", "--seed", "3"]) == 0


class TestSweepAndReport:
    SWEEP = [
        "sweep",
        "--meshes", "2x2:1",
        "--orderings", "O0,O2",
        "--tasks", "1",
        "--workers", "1",
    ]

    def test_sweep_cold_then_cached_then_report(self, tmp_path, capsys):
        argv = [
            *self.SWEEP,
            "--cache-dir", str(tmp_path / "cache"),
            "--store", str(tmp_path / "runs.jsonl"),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "0 cache hits / 2 simulated" in cold
        assert "Absolute BTs (fixed8)" in cold

        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "2 cache hits / 0 simulated" in warm
        assert "100.0% hit rate" in warm

        assert main(["report", "--store", str(tmp_path / "runs.jsonl")]) == 0
        report = capsys.readouterr().out
        assert "Absolute BTs (fixed8)" in report
        assert "2x2 MC1" in report

    def test_sweep_seed_varies_workload(self, tmp_path, capsys):
        def run(seed):
            argv = [
                *self.SWEEP,
                "--cache-dir", str(tmp_path / f"cache{seed}"),
                "--store", str(tmp_path / f"runs{seed}.jsonl"),
                "--seed", str(seed),
            ]
            assert main(argv) == 0
            return capsys.readouterr().out

        # Different seeds must change the simulated workload (model
        # init + image + task sampling all derive from --seed).
        assert run(1) != run(2)

    def test_sweep_spec_file_honors_seed_override(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "name": "fromfile",
            "base": {"max_tasks_per_layer": 1},
            "axes": {"mesh": ["2x2:1"], "ordering": ["O0"]},
            "seed": 0,
        }))
        argv = [
            "sweep", "--spec", str(spec), "--workers", "1",
            "--cache-dir", str(tmp_path / "cache"),
            "--store", str(tmp_path / "runs.jsonl"),
        ]
        assert main(argv) == 0
        base = capsys.readouterr().out
        assert main([*argv, "--seed", "9"]) == 0
        reseeded = capsys.readouterr().out
        assert "0 cache hits" in reseeded  # new seed = new points
        assert base != reseeded

    def test_sweep_bad_spec_file_is_clean_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        with pytest.raises(SystemExit, match="bad sweep spec file"):
            main(["sweep", "--spec", str(missing)])
        bad_key = tmp_path / "bad.json"
        bad_key.write_text('{"nme": "typo"}')
        with pytest.raises(SystemExit, match="bad sweep spec file"):
            main(["sweep", "--spec", str(bad_key)])

    def test_sweep_bad_grid_is_clean_error(self):
        with pytest.raises(SystemExit, match="bad sweep grid"):
            main(["sweep", "--meshes", "4by4"])
        with pytest.raises(SystemExit, match="bad sweep grid"):
            main(["sweep", "--meshes", "2x2:1", "--orderings", "O9"])

    def test_sweep_csv_export(self, tmp_path, capsys):
        argv = [
            *self.SWEEP,
            "--cache-dir", str(tmp_path / "cache"),
            "--store", str(tmp_path / "runs.jsonl"),
            "--csv", str(tmp_path / "out.csv"),
        ]
        assert main(argv) == 0
        assert (tmp_path / "out.csv").read_text().count("\n") == 3

    def test_report_missing_store(self, tmp_path, capsys):
        assert main(["report", "--store", str(tmp_path / "no.jsonl")]) == 1


class TestKindSweeps:
    def _sweep(self, tmp_path, capsys, *extra):
        argv = [
            "sweep", "--workers", "1",
            "--cache-dir", str(tmp_path / "cache"),
            "--store", str(tmp_path / "runs.jsonl"),
            *extra,
        ]
        assert main(argv) == 0
        return capsys.readouterr().out

    def test_synthetic_sweep_and_report(self, tmp_path, capsys):
        out = self._sweep(
            tmp_path, capsys,
            "--kind", "synthetic", "--meshes", "3x3",
            "--patterns", "uniform,hotspot", "--packets", "20",
        )
        assert "synthetic 3x3 uniform" in out
        assert "Synthetic traffic BTs" in out
        assert "0 errors" in out

        store = str(tmp_path / "runs.jsonl")
        assert main(["report", "--store", store]) == 0
        report = capsys.readouterr().out
        assert "Synthetic traffic BTs" in report
        assert "hotspot" in report

        assert main(["report", "--store", store, "--pivot", "link"]) == 0
        linked = capsys.readouterr().out
        assert "Synthetic per-link BTs" in linked
        assert "R0.EAST" in linked

    def test_batch_sweep_and_layer_report(self, tmp_path, capsys):
        out = self._sweep(
            tmp_path, capsys,
            "--kind", "batch", "--images", "2", "--tasks", "1",
            "--meshes", "2x2:1", "--orderings", "O0,O2",
        )
        assert "(batch x2)" in out
        assert "over 2 images" in out
        assert "Absolute BTs (fixed8)" in out

        store = str(tmp_path / "runs.jsonl")
        assert main(["report", "--store", store, "--pivot", "layer"]) == 0
        report = capsys.readouterr().out
        assert "Per-layer BTs" in report
        assert "conv1" in report

    def test_synthetic_sweep_caches(self, tmp_path, capsys):
        args = ("--kind", "synthetic", "--meshes", "2x2",
                "--patterns", "uniform", "--packets", "10")
        cold = self._sweep(tmp_path, capsys, *args)
        assert "0 cache hits / 1 simulated" in cold
        warm = self._sweep(tmp_path, capsys, *args)
        assert "1 cache hits / 0 simulated" in warm

    def test_model_layer_and_link_pivots(self, tmp_path, capsys):
        self._sweep(
            tmp_path, capsys,
            "--meshes", "2x2:1", "--orderings", "O0,O2", "--tasks", "1",
        )
        store = str(tmp_path / "runs.jsonl")
        assert main(["report", "--store", store, "--pivot", "layer"]) == 0
        assert "Per-layer reductions vs O0" in capsys.readouterr().out
        assert main(["report", "--store", store, "--pivot", "link"]) == 0
        assert "Per-link BTs" in capsys.readouterr().out

    def test_unknown_kind_is_parser_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--kind", "quantum"])
        assert "invalid choice" in capsys.readouterr().err


    def test_inapplicable_flags_rejected_not_ignored(self):
        with pytest.raises(SystemExit, match="--orderings does not apply"):
            main(["sweep", "--kind", "synthetic", "--orderings", "O0,O2"])
        with pytest.raises(SystemExit, match="--patterns does not apply"):
            main(["sweep", "--kind", "model", "--patterns", "hotspot"])
        with pytest.raises(SystemExit, match="--images does not apply"):
            main(["sweep", "--kind", "model", "--images", "4"])
        with pytest.raises(SystemExit, match="--link-width does not apply"):
            main(["sweep", "--kind", "batch", "--link-width", "64"])

    def test_spec_file_rejects_explicit_grid_flags(self, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "base": {"max_tasks_per_layer": 1},
            "axes": {"mesh": ["2x2:1"], "ordering": ["O0"]},
        }))
        with pytest.raises(SystemExit, match="ignored with --spec"):
            main(["sweep", "--spec", str(spec), "--patterns", "hotspot"])
        with pytest.raises(SystemExit, match="ignored with --spec"):
            main(["sweep", "--spec", str(spec), "--kind", "synthetic"])
        with pytest.raises(SystemExit, match="ignored with --spec"):
            main(["sweep", "--spec", str(spec), "--meshes", "4x4:2"])

    def test_synthetic_store_layer_pivot_notes_no_data(
        self, tmp_path, capsys
    ):
        self._sweep(
            tmp_path, capsys,
            "--kind", "synthetic", "--meshes", "2x2",
            "--patterns", "uniform", "--packets", "10",
        )
        store = str(tmp_path / "runs.jsonl")
        assert main(["report", "--store", store, "--pivot", "layer"]) == 0
        out = capsys.readouterr().out
        assert "no per-layer data" in out
        assert "Synthetic traffic BTs" not in out

    def test_csv_has_kind_column(self, tmp_path, capsys):
        self._sweep(
            tmp_path, capsys,
            "--kind", "synthetic", "--meshes", "2x2",
            "--patterns", "uniform", "--packets", "10",
            "--csv", str(tmp_path / "out.csv"),
        )
        header, row = (
            (tmp_path / "out.csv").read_text().strip().splitlines()
        )
        assert "kind" in header.split(",")
        assert "synthetic" in row


class TestTraceReplayCLI:
    def record_trace(self, tmp_path, capsys) -> str:
        path = str(tmp_path / "run.trace.gz")
        assert main(["traffic", "--pattern", "uniform", "--mesh", "3x3",
                     "--packets", "15", "--trace", path]) == 0
        out = capsys.readouterr().out
        assert "wrote trace" in out
        return path

    def test_traffic_records_replayable_trace(self, tmp_path, capsys):
        from repro.workloads.traces import TrafficTrace

        path = self.record_trace(tmp_path, capsys)
        trace = TrafficTrace.load(path)
        assert trace.is_replayable
        assert len(trace.packets) == 15

    def test_run_noc_records_trace(self, tmp_path, capsys):
        from repro.workloads.traces import TrafficTrace

        path = str(tmp_path / "lenet.trace.gz")
        assert main(["run-noc", "--tasks", "1", "--format", "fixed8",
                     "--trace", path]) == 0
        assert "wrote trace" in capsys.readouterr().out
        assert TrafficTrace.load(path).is_replayable

    def test_replay_sweep_cold_cached_and_report(self, tmp_path, capsys):
        trace = self.record_trace(tmp_path, capsys)
        argv = [
            "sweep", "--kind", "replay", "--traces", trace,
            "--cores", "offline,both", "--workers", "1",
            "--cache-dir", str(tmp_path / "cache"),
            "--store", str(tmp_path / "runs.jsonl"),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "0 cache hits / 4 simulated" in cold
        assert "[cores agree]" in cold
        assert "Replayed BTs" in cold

        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "100.0% hit rate" in warm

        store = str(tmp_path / "runs.jsonl")
        assert main(["report", "--store", store, "--pivot", "link"]) == 0
        assert "Replayed per-link BTs" in capsys.readouterr().out

    def test_replay_sweep_needs_traces(self):
        with pytest.raises(SystemExit, match="--traces"):
            main(["sweep", "--kind", "replay"])

    def test_replay_rejects_mesh_flag(self, tmp_path, capsys):
        trace = self.record_trace(tmp_path, capsys)
        with pytest.raises(SystemExit, match="--meshes"):
            main(["sweep", "--kind", "replay", "--traces", trace,
                  "--meshes", "4x4"])

    def test_trace_flags_rejected_for_model_kind(self):
        with pytest.raises(SystemExit, match="--traces"):
            main(["sweep", "--traces", "x.gz"])
        with pytest.raises(SystemExit, match="--codings"):
            main(["sweep", "--codings", "delta"])

    def test_coding_cross_network_core_rejected_up_front(
        self, tmp_path, capsys
    ):
        """A coding x network-core cross product would abort the whole
        sweep at expansion; the CLI rejects it with guidance instead."""
        trace = self.record_trace(tmp_path, capsys)
        with pytest.raises(SystemExit, match="offline only"):
            main(["sweep", "--kind", "replay", "--traces", trace,
                  "--codings", "none,delta", "--cores", "offline,event"])
        # Codings with offline cores remain fine.
        assert main([
            "sweep", "--kind", "replay", "--traces", trace,
            "--codings", "none,delta", "--workers", "1",
            "--cache-dir", str(tmp_path / "cache"),
            "--store", str(tmp_path / "runs.jsonl"),
        ]) == 0

    def test_missing_trace_file_fails_at_expansion(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read trace file"):
            main(["sweep", "--kind", "replay",
                  "--traces", str(tmp_path / "ghost.trace.gz")])

    def test_cores_axis_on_model_sweep(self, tmp_path, capsys):
        argv = [
            "sweep", "--meshes", "2x2:1", "--orderings", "O0",
            "--tasks", "1", "--workers", "1",
            "--cores", "event,stepped",
            "--cache-dir", str(tmp_path / "cache"),
            "--store", str(tmp_path / "runs.jsonl"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 points" in out
        assert "0 errors" in out
        records = [json.loads(line) for line in
                   (tmp_path / "runs.jsonl").read_text().splitlines()]
        by_core = {r["config"]["core"]: r for r in records}
        assert set(by_core) == {"event", "stepped"}
        # The cores are bit-identical on the same workload.
        assert (
            by_core["event"]["result"]["total_bit_transitions"]
            == by_core["stepped"]["result"]["total_bit_transitions"]
        )


class TestReportSkipsFailedJobs:
    """Regression: `repro report` on a store containing failed jobs
    warns and reports the rest instead of raising."""

    def write_store(self, tmp_path) -> str:
        ok = {
            "job_id": "good", "campaign": "t", "kind": "model",
            "model": "lenet", "cached": False,
            "config": {"width": 2, "height": 2, "n_mcs": 1,
                       "ordering": "O0", "data_format": "fixed8"},
            "status": "ok",
            "result": {"total_bit_transitions": 123, "total_cycles": 9,
                       "flit_hops": 5, "tasks_verified": 1,
                       "tasks_total": 1, "mean_packet_latency": 1.0,
                       "ordering_latency_cycles": 0},
            "error": None,
        }
        failed = {
            "job_id": "bad", "campaign": "t", "kind": "model",
            "model": "lenet", "cached": False, "config": {},
            "status": "error", "result": None,
            "error": "SimulationTimeout: boom",
        }
        hollow = {**ok, "job_id": "hollow", "result": None}
        store = tmp_path / "mixed.jsonl"
        store.write_text(
            "\n".join(json.dumps(r) for r in (ok, failed, hollow)) + "\n"
        )
        return str(store)

    def test_report_warns_and_renders(self, tmp_path, capsys):
        store = self.write_store(tmp_path)
        assert main(["report", "--store", store]) == 0
        captured = capsys.readouterr()
        assert "Absolute BTs (fixed8)" in captured.out
        assert "2x2 MC1" in captured.out
        # One summary line, not one warning per skipped record.
        assert "skipped 2 of 3 record(s)" in captured.err
        assert "first: bad: SimulationTimeout: boom" in captured.err
        assert captured.err.count("warning:") == 1

    def test_report_pivots_survive_failed_jobs(self, tmp_path, capsys):
        store = self.write_store(tmp_path)
        for pivot_name in ("mesh", "model", "layer", "link"):
            assert main(["report", "--store", store,
                         "--pivot", pivot_name]) == 0


class TestSweepProgressAndMetrics:
    SWEEP = [
        "sweep",
        "--meshes", "2x2:1",
        "--orderings", "O0,O2",
        "--tasks", "1",
        "--workers", "1",
        "--no-cache",
    ]

    def test_progress_streams_telemetry_lines(self, tmp_path, capsys):
        argv = [
            *self.SWEEP,
            "--store", str(tmp_path / "runs.jsonl"),
            "--progress",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "[1/2]" in out
        assert "[2/2]" in out
        assert "0 failed" in out
        assert "eta" in out  # the second sample carries an ETA

    def test_metrics_flag_prints_counter_families(self, tmp_path, capsys):
        argv = [
            *self.SWEEP,
            "--store", str(tmp_path / "runs.jsonl"),
            "--metrics",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "campaign metrics:" in out
        for name in (
            "event.steps_executed",
            "router.vc_grants",
            "codec.batch_chunks",
            "cache.misses",
            "runner.jobs",
        ):
            assert name in out, name


class TestSweepResilience:
    """CLI plumbing of the fault-tolerant runner: --fault-plan,
    --job-timeout/--max-retries, --resume, and report --failures."""

    SWEEP = [
        "sweep",
        "--meshes", "2x2:1",
        "--orderings", "O0,O2",
        "--tasks", "1",
        "--workers", "2",
        "--no-cache",
    ]

    def _plan(self, tmp_path, actions) -> str:
        path = tmp_path / "faults.json"
        path.write_text(json.dumps({"actions": actions}))
        return str(path)

    def _campaign_id(self, out: str) -> str:
        for line in out.splitlines():
            if line.startswith("campaign id: "):
                return line.split()[2]
        raise AssertionError(f"no campaign id line in:\n{out}")

    def test_kill_fault_fails_structured_not_raised(
        self, tmp_path, capsys
    ):
        store = str(tmp_path / "runs.jsonl")
        argv = [
            *self.SWEEP,
            "--store", store,
            "--max-retries", "0",
            "--fault-plan",
            self._plan(tmp_path, {"0": [{"kind": "kill"}]}),
            "--metrics",
        ]
        assert main(argv) == 1  # failed, but gracefully
        out = capsys.readouterr().out
        assert "1 worker crashes" in out
        assert "1 quarantined" in out
        assert "failures: 1 job(s) (1 worker_crash)" in out
        assert "runner.worker_crashes = 1" in out
        assert "cache.corrupt_entries = 0" in out

        assert main(["report", "--store", store, "--failures"]) == 0
        failures = capsys.readouterr().out
        assert "Failed jobs (1 of 2):" in failures
        assert "worker_crash" in failures
        assert "QUARANTINED" in failures

    def test_transient_fault_retries_to_fault_free_rows(
        self, tmp_path, capsys
    ):
        clean_store = tmp_path / "clean.jsonl"
        argv = [*self.SWEEP, "--store", str(clean_store)]
        assert main(argv) == 0
        capsys.readouterr()

        chaos_store = tmp_path / "chaos.jsonl"
        argv = [
            *self.SWEEP,
            "--store", str(chaos_store),
            "--fault-plan",
            self._plan(tmp_path, {"1": [{"kind": "transient"}]}),
        ]
        assert main(argv) == 0
        assert "1 retries" in capsys.readouterr().out

        def rows(path):
            drop = ("cached", "resumed", "campaign")
            return [
                {k: v for k, v in json.loads(line).items()
                 if k not in drop}
                for line in path.read_text().splitlines()
            ]

        assert rows(chaos_store) == rows(clean_store)

    def test_resume_completes_after_exhausted_retries(
        self, tmp_path, capsys
    ):
        store = str(tmp_path / "runs.jsonl")
        base = [*self.SWEEP, "--store", store]
        kill_all_attempts = {
            "0": [{"kind": "kill", "attempt": n} for n in (1, 2, 3)]
        }
        assert main([
            *base,
            "--fault-plan", self._plan(tmp_path, kill_all_attempts),
        ]) == 1
        out = capsys.readouterr().out
        cid = self._campaign_id(out)
        assert "1 quarantined" in out

        # Same grid + --resume: the journaled job is served back and
        # only the quarantined one re-executes (faults lifted).
        assert main([*base, "--resume", cid]) == 0
        resumed = capsys.readouterr().out
        assert "1 resumed" in resumed
        assert "0 errors" in resumed
        latest = ResultStore(store).latest_by_job()
        assert len(latest) == 2
        assert all(r["status"] == "ok" for r in latest.values())

    def test_resume_id_mismatch_is_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="does not match"):
            main([
                *self.SWEEP,
                "--store", str(tmp_path / "r.jsonl"),
                "--resume", "other-12345678",
            ])

    def test_resume_without_journal_is_clean_error(
        self, tmp_path, capsys
    ):
        store = str(tmp_path / "r.jsonl")
        argv = [*self.SWEEP, "--store", store]
        assert main(argv) == 0
        cid = self._campaign_id(capsys.readouterr().out)
        # A completed (non-resumed) rerun starts a fresh journal; but
        # resuming with no journal on disk must fail loudly.
        (tmp_path / f"{cid}.journal").unlink()
        with pytest.raises(SystemExit, match="nothing to resume"):
            main([*argv, "--resume", cid])

    def test_report_failures_on_healthy_store(self, tmp_path, capsys):
        store = str(tmp_path / "runs.jsonl")
        assert main([*self.SWEEP, "--store", store]) == 0
        capsys.readouterr()
        assert main(["report", "--store", store, "--failures"]) == 0
        assert "no failed jobs" in capsys.readouterr().out


class TestTraceCli:
    GOLDEN = "tests/data/golden_lenet_fixed8_O0.trace.gz"

    def test_stats_prints_pinned_headlines(self, capsys):
        assert main(["trace", "stats", self.GOLDEN]) == 0
        out = capsys.readouterr().out
        assert "total BTs         : 37510" in out
        assert "flit hops         : 870" in out
        assert "packets           : 74 (replayable)" in out
        assert "hottest link      : R6.EAST (9344 BTs)" in out

    def test_stats_per_link_table(self, capsys):
        assert main(["trace", "stats", self.GOLDEN, "--per-link"]) == 0
        out = capsys.readouterr().out
        assert "R6.EAST: 9344" in out
        assert "R0.LOCAL: 781" in out

    def test_heat_reports_hottest_cells(self, capsys):
        assert main(
            ["trace", "heat", self.GOLDEN, "--window", "64", "--top", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "5 window(s) of 64 cycle(s); 37510 BTs total" in out
        assert "R6.EAST window" in out

    def test_heat_owner_attribution(self, capsys):
        assert main(["trace", "heat", self.GOLDEN, "--owners"]) == 0
        out = capsys.readouterr().out
        assert "BTs by owning packet" in out
        assert "packet " in out

    def test_self_diff_is_empty_and_exits_zero(self, capsys):
        assert main(["trace", "diff", self.GOLDEN, self.GOLDEN]) == 0
        out = capsys.readouterr().out
        assert "traces are identical" in out

    def test_diff_against_reordered_exits_one(self, tmp_path, capsys):
        from repro.workloads.traces import TrafficTrace

        reordered = tmp_path / "reordered.trace.gz"
        TrafficTrace.load(self.GOLDEN).reordered("popcount_desc").save(
            reordered
        )
        assert main(
            ["trace", "diff", self.GOLDEN, str(reordered)]
        ) == 1
        out = capsys.readouterr().out
        assert "diverging link(s)" in out
        assert "first divergence: link R0.LOCAL, window 0" in out

    def test_bisect_localises_reordered_divergence(
        self, tmp_path, capsys
    ):
        from repro.workloads.traces import TrafficTrace

        reordered = tmp_path / "reordered.trace.gz"
        TrafficTrace.load(self.GOLDEN).reordered("popcount_desc").save(
            reordered
        )
        assert main(
            ["trace", "bisect", self.GOLDEN, str(reordered)]
        ) == 1
        out = capsys.readouterr().out
        assert "first diverging window: 0 (cycles [0, 64))" in out
        assert "R6.EAST" in out
        assert "offline probe(s)" in out

    def test_bisect_self_exits_zero(self, capsys):
        assert main(["trace", "bisect", self.GOLDEN, self.GOLDEN]) == 0
        assert "no divergence" in capsys.readouterr().out

    def test_missing_trace_file_is_clean_error(self):
        with pytest.raises(SystemExit, match="bad trace file"):
            main(["trace", "stats", "nope.trace.gz"])

    def test_trace_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["trace"])


class TestServingCLI:
    def serving_argv(self, tmp_path, **extra):
        argv = [
            "sweep", "--kind", "serving",
            "--tenants", "uniform+hotspot",
            "--requests", "2",
            "--packets", "2",
            "--orderings", "O0",
            "--workers", "1",
            "--cache-dir", str(tmp_path / "cache"),
            "--store", str(tmp_path / "svc.jsonl"),
        ]
        for flag, value in extra.items():
            argv += [f"--{flag}", str(value)]
        return argv

    def test_serving_sweep_and_tenant_report(self, tmp_path, capsys):
        store = str(tmp_path / "svc.jsonl")
        assert main(self.serving_argv(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "Serving fleet BTs" in out
        assert "requests" in out

        assert main(["report", "--store", store,
                     "--pivot", "tenant"]) == 0
        report = capsys.readouterr().out
        assert "Per-tenant serving stats" in report
        assert "uniform" in report and "hotspot" in report

    def test_serving_rate_axis(self, tmp_path, capsys):
        assert main(
            self.serving_argv(tmp_path, rates="0.01,0.05")
        ) == 0
        out = capsys.readouterr().out
        assert "background_rate=0.01" in out
        assert "background_rate=0.05" in out

    def test_serving_sweep_deterministic(self, tmp_path, capsys):
        assert main(self.serving_argv(tmp_path)) == 0
        first = capsys.readouterr().out
        # Fresh cache, same seed: identical tables.
        assert main(
            [a if a != str(tmp_path / "cache") else str(tmp_path / "c2")
             for a in self.serving_argv(tmp_path)]
        ) == 0
        second = capsys.readouterr().out

        def clean(text):
            # Drop provenance/timing lines: campaign id and wall time
            # vary run to run, the simulated tables must not.
            return "\n".join(
                line for line in text.splitlines()
                if not line.startswith("campaign")
            )

        assert clean(first) == clean(second)

    def test_serving_flags_rejected_elsewhere(self):
        with pytest.raises(SystemExit, match="--tenants does not apply"):
            main(["sweep", "--tenants", "uniform", "--workers", "1"])
        with pytest.raises(SystemExit, match="--rates does not apply"):
            main(["sweep", "--kind", "synthetic", "--rates", "0.1",
                  "--workers", "1"])

    def test_synthetic_flags_rejected_for_serving(self):
        with pytest.raises(SystemExit, match="--patterns does not apply"):
            main(["sweep", "--kind", "serving", "--patterns", "uniform",
                  "--workers", "1"])

    def test_bad_rates_is_clean_error(self):
        with pytest.raises(SystemExit, match="bad --rates"):
            main(["sweep", "--kind", "serving", "--rates", "fast",
                  "--workers", "1"])


class TestServiceCLI:
    """The distributed-sweep surface: serve/work plumbing, cache
    verify, and the resume drift guard."""

    def _tiny_spec(self):
        from repro.experiments.spec import SweepSpec

        return SweepSpec(
            name="svc",
            model="lenet",
            base={"max_tasks_per_layer": 1},
            axes={"mesh": ["2x2:1"], "ordering": ["O0"]},
        )

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert (args.host, args.port) == ("127.0.0.1", 0)
        assert args.lease == 30.0
        assert args.heartbeat is None

    def test_work_requires_connect(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["work"])

    def test_cache_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["cache"])

    def test_work_against_api_server_drains(self, tmp_path, capsys):
        from repro.service import SweepServer

        server = SweepServer(self._tiny_spec())
        host, port = server.start()
        try:
            code = main(["work", "--connect", f"{host}:{port}",
                         "--name", "cli-w"])
        finally:
            server.close()
        assert code == 0
        out = capsys.readouterr().out
        assert "worker cli-w drained (complete): 1 ok" in out
        assert server.result is not None

    def test_work_rejected_on_campaign_mismatch(self, capsys):
        from repro.service import SweepServer

        server = SweepServer(self._tiny_spec())
        host, port = server.start()
        try:
            code = main(["work", "--connect", f"{host}:{port}",
                         "--expect-campaign", "other-00000000"])
        finally:
            server.close()
        assert code == 2
        assert "campaign mismatch" in capsys.readouterr().err

    def test_work_dead_server_exits_3_with_hint(self, capsys):
        from repro.service import SweepServer

        server = SweepServer(self._tiny_spec())
        host, port = server.start()
        server.close()
        code = main(["work", "--connect", f"{host}:{port}",
                     "--reconnect-attempts", "2",
                     "--reconnect-backoff", "0.01",
                     "--expect-campaign", server.campaign_id])
        assert code == 3
        err = capsys.readouterr().err
        assert "server lost" in err
        assert f"--resume {server.campaign_id}" in err

    def test_cache_verify_clean_exits_0(self, tmp_path, capsys):
        from repro.experiments.cache import ResultCache

        root = tmp_path / "cache"
        ResultCache(root).put(
            "ab" * 32, {"job_id": "x", "status": "ok", "result": {}}
        )
        code = main(["cache", "verify", "--cache-dir", str(root)])
        assert code == 0
        out = capsys.readouterr().out
        assert "1 entry checked, 1 ok, 0 legacy, 0 corrupt" in out

    def test_cache_verify_corrupt_exits_1_and_quarantines(
        self, tmp_path, capsys
    ):
        from repro.experiments.cache import ResultCache

        root = tmp_path / "cache"
        cache = ResultCache(root)
        key = "cd" * 32
        cache.put(key, {"job_id": "x", "status": "ok", "result": {}})
        cache._path(key).write_text("garbage")
        code = main(["cache", "verify", "--cache-dir", str(root)])
        assert code == 1
        out = capsys.readouterr().out
        assert "1 corrupt" in out
        assert "(quarantined)" in out
        assert "quarantined entries (1):" in out
        assert not cache._path(key).exists()

    def test_cache_verify_no_quarantine_leaves_entry(
        self, tmp_path, capsys
    ):
        from repro.experiments.cache import ResultCache

        root = tmp_path / "cache"
        cache = ResultCache(root)
        key = "ef" * 32
        cache.put(key, {"job_id": "x", "status": "ok", "result": {}})
        cache._path(key).write_text("garbage")
        code = main(["cache", "verify", "--cache-dir", str(root),
                     "--no-quarantine"])
        assert code == 1
        assert "(left in place)" in capsys.readouterr().out
        assert cache._path(key).exists()

    def test_resume_with_drifted_journal_is_clean_error(
        self, tmp_path, capsys
    ):
        # A journal at the expected path whose start entry records a
        # different campaign: the drift guard must abort, not mix.
        store = tmp_path / "svc.jsonl"
        sweep = ["sweep", "--name", "svc", "--meshes", "2x2:1",
                 "--orderings", "O0", "--tasks", "1", "--workers", "1",
                 "--no-cache", "--store", str(store)]
        assert main(sweep) == 0
        out = capsys.readouterr().out
        cid = next(
            line.split()[2] for line in out.splitlines()
            if line.startswith("campaign id: ")
        )
        journal_path = tmp_path / f"{cid}.journal"
        text = journal_path.read_text().replace(cid, "svc-00000000")
        journal_path.write_text(text)
        with pytest.raises(SystemExit, match="drifted"):
            main(sweep + ["--resume", cid])
