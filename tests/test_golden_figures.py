"""Golden regression suite: the checked-in paper figures must not drift.

Parses the recorded tables under ``benchmarks/results/`` for Fig. 9-13
and re-runs the exact pipelines the benches use, asserting the current
simulator + report stack reproduces the committed numbers: BT counts
and popcount grids tolerance-free, rates and probabilities within half
of the last printed digit.  A failure means a refactor changed the
reproduced paper results — regenerate the goldens deliberately (run
the benches and commit the diff), never accidentally.

The golden files are read at *import* (collection) time.  That matters
when the whole suite runs in one session: the benches rewrite
``benchmarks/results/`` as they execute, so reading lazily at test
time would compare fresh output against freshly overwritten files and
hide any drift.
"""

from __future__ import annotations

import pathlib
import re

import numpy as np
import pytest

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.simulator import run_model_on_noc
from repro.analysis.distribution import analyze_stream
from repro.bits.popcount import popcount_array
from repro.experiments import (
    CampaignRunner,
    ResultCache,
    SweepSpec,
    pivot,
    reduction_series,
)
from repro.ordering.strategies import OrderingMethod
from repro.workloads.packets import build_packets, ones_count_grid
from repro.workloads.streams import (
    random_weights,
    trained_lenet_weights,
    words_for_format,
)

RESULTS_DIR = pathlib.Path(__file__).parent.parent / "benchmarks" / "results"

# Read every golden at import time — before any bench in the same
# pytest session overwrites it (collection precedes execution).
GOLDEN = {
    name: (RESULTS_DIR / f"{name}.txt").read_text()
    for name in (
        "fig09_ordering_view",
        "fig10_float32_bits",
        "fig11_fixed8_bits",
        "fig12_noc_sizes_fixed8",
        "fig12_noc_sizes_float32",
        "fig13_dnn_models_fixed8",
        "fig13_dnn_models_float32",
    )
}

# Half of the last printed digit: tables render rates/probabilities
# with two decimals, so a faithful rerun parses back within 5e-3.
EPS = 5e-3


def parse_series_tables(text: str) -> dict[str, dict[str, dict[str, float]]]:
    """Parse every ``format_series`` block: {title: {row: {col: value}}}."""
    lines = text.splitlines()
    tables: dict[str, dict[str, dict[str, float]]] = {}
    i = 0
    while i < len(lines):
        if lines[i].startswith("Config") and i > 0:
            title = lines[i - 1].strip()
            columns = lines[i].split()[1:]
            series: dict[str, dict[str, float]] = {}
            j = i + 2  # skip the dashed rule
            while j < len(lines) and lines[j].strip() and not (
                lines[j].startswith("Config")
            ):
                row_label = lines[j][:24].strip()
                values = [float(v) for v in lines[j][24:].split()]
                series[row_label] = dict(zip(columns, values))
                j += 1
            tables[title] = series
            i = j
        else:
            i += 1
    return tables


def parse_count_grids(text: str) -> dict[str, np.ndarray]:
    """Parse the Fig. 9 flit/lane popcount grids: {title: (F, L) ints}."""
    grids: dict[str, np.ndarray] = {}
    title = None
    rows: list[list[int]] = []
    for line in text.splitlines():
        match = re.match(r"flit\s+\d+ \| (.*)", line)
        if match:
            rows.append([int(v) for v in match.group(1).split()])
        elif line.strip() and not line.startswith("mean "):
            if title and rows:
                grids[title] = np.array(rows)
            title, rows = line.strip(), []
    if title and rows:
        grids[title] = np.array(rows)
    return grids


def parse_bit_stats(text: str) -> dict[str, dict[str, list[float]]]:
    """Parse Fig. 10/11 per-position stats: {stream: {line: values}}."""
    stats: dict[str, dict[str, list[float]]] = {}
    current = None
    for line in text.splitlines():
        match = re.match(r"\s+P\((bit=1|flip)\)\s*: (.*)", line)
        if match and current is not None:
            key = "one" if match.group(1) == "bit=1" else "flip"
            stats[current][key] = [float(v) for v in match.group(2).split()]
        elif re.match(r"(random|trained) (baseline|ordered)$", line.strip()):
            current = line.strip()
            stats[current] = {}
    return stats


class TestFig09Golden:
    def test_ordering_view_counts_exact(self):
        golden = parse_count_grids(GOLDEN["fig09_ordering_view"])
        words, fmt = words_for_format(trained_lenet_weights(), "fixed8")
        base = build_packets(words, 2000, 8, fmt.width, kernel_size=25)
        ordered = build_packets(
            words, 2000, 8, fmt.width, kernel_size=25, ordered=True
        )
        n_show = golden["Fig. 9 (left): before ordering"].shape[0]
        np.testing.assert_array_equal(
            ones_count_grid(base)[:n_show],
            golden["Fig. 9 (left): before ordering"],
        )
        np.testing.assert_array_equal(
            ones_count_grid(ordered)[:n_show],
            golden["Fig. 9 (right): after ordering"],
        )

    def test_spread_line(self):
        match = re.search(
            r"spread: ([\d.]+) -> ([\d.]+)", GOLDEN["fig09_ordering_view"]
        )
        words, fmt = words_for_format(trained_lenet_weights(), "fixed8")
        base = build_packets(words, 2000, 8, fmt.width, kernel_size=25)
        spread = float(np.ptp(ones_count_grid(base)[:26], axis=1).mean())
        assert spread == pytest.approx(float(match.group(1)), abs=EPS)
        assert float(match.group(2)) == 0.0


@pytest.mark.parametrize(
    "name, width",
    [("fig10_float32_bits", 32), ("fig11_fixed8_bits", 8)],
)
def test_bit_position_stats_golden(name, width):
    golden = parse_bit_stats(GOLDEN[name])
    fmt = "float32" if width == 32 else "fixed8"
    pools = {
        "random": random_weights(30_000, seed=3),
        "trained": trained_lenet_weights(),
    }
    for pool_name, values in pools.items():
        words, _ = words_for_format(values, fmt)
        words = np.asarray(words)
        counts = popcount_array(words)
        ordered = words[np.argsort(-counts.astype(np.int64), kind="stable")]
        for variant, stream in (("baseline", words), ("ordered", ordered)):
            stats = analyze_stream(stream, width)
            expected = golden[f"{pool_name} {variant}"]
            assert len(expected["one"]) == width, name
            np.testing.assert_allclose(
                stats.one_probability, expected["one"], atol=EPS
            )
            np.testing.assert_allclose(
                stats.transition_probability, expected["flip"], atol=EPS
            )


@pytest.mark.parametrize("data_format", ["fixed8", "float32"])
def test_fig12_noc_sizes_golden(data_format, tmp_path):
    """The full mesh x ordering campaign reproduces Fig. 12 exactly."""
    tables = parse_series_tables(GOLDEN[f"fig12_noc_sizes_{data_format}"])
    (absolute_title,) = [t for t in tables if t.startswith("Fig. 12")]
    golden_abs = tables[absolute_title]
    golden_red = tables["Reduction rates vs O0 (%)"]

    spec = SweepSpec(
        name=f"golden_fig12_{data_format}",
        model="trained_lenet",
        model_seed=3,
        image_seed=5,
        base={
            "data_format": data_format,
            "max_tasks_per_layer": 32,
            "seed": 2025,
        },
        axes={"mesh": ["4x4:2", "8x8:4", "8x8:8"],
              "ordering": ["O0", "O1", "O2"]},
    )
    runner = CampaignRunner(cache=ResultCache(tmp_path / "cache"), workers=1)
    campaign = runner.run(spec)
    assert not campaign.errors, campaign.summary()

    series = pivot(campaign.records)
    assert set(series) == set(golden_abs)
    for row, golden_values in golden_abs.items():
        for col, golden_bt in golden_values.items():
            # BT counts are integers: tolerance-free comparison.
            assert series[row][col] == golden_bt, (
                f"{data_format} {row} {col}: "
                f"{series[row][col]} != golden {golden_bt}"
            )
    reductions = reduction_series(series)
    for row, golden_values in golden_red.items():
        for col, golden_rate in golden_values.items():
            assert reductions[row][col] == pytest.approx(
                golden_rate, abs=EPS
            ), f"{data_format} {row} {col}"


# -- golden trace fixture ---------------------------------------------
#
# A checked-in full-fidelity trace (3x3 MC1 fixed8 LeNet, O0, 2 tasks
# per layer) recorded with repro.noc.recorder.TraceRecorder.  The
# replayed per-link BT table below is pinned Fig. 9-style: every link,
# tolerance-free.  A failure means the trace format decoding or the
# replay path changed the reproduced wire traffic — regenerate the
# fixture deliberately, never accidentally.

GOLDEN_TRACE = (
    pathlib.Path(__file__).parent
    / "data"
    / "golden_lenet_fixed8_O0.trace.gz"
)

GOLDEN_TRACE_PER_LINK = {
    "R0.LOCAL": 781, "R0.SOUTH": 56, "R1.LOCAL": 776, "R1.WEST": 25,
    "R2.LOCAL": 970, "R2.WEST": 0, "R3.LOCAL": 1194, "R3.NORTH": 781,
    "R3.SOUTH": 104, "R4.LOCAL": 2770, "R4.NORTH": 776, "R4.WEST": 14,
    "R5.LOCAL": 2813, "R5.NORTH": 970, "R5.WEST": 0, "R6.EAST": 9344,
    "R6.LOCAL": 126, "R6.NORTH": 2031, "R7.EAST": 4761,
    "R7.LOCAL": 909, "R7.NORTH": 3580, "R7.WEST": 13, "R8.LOCAL": 890,
    "R8.NORTH": 3826, "R8.WEST": 0,
}
GOLDEN_TRACE_TOTAL_BT = 37510
GOLDEN_TRACE_FLIT_HOPS = 870
GOLDEN_TRACE_PACKETS = 74
GOLDEN_TRACE_REORDERED_BT = 37580


class TestGoldenTraceReplay:
    @pytest.fixture(scope="class")
    def trace(self):
        from repro.workloads.traces import TrafficTrace

        return TrafficTrace.load(GOLDEN_TRACE)

    def test_recorded_per_link_table_exact(self, trace):
        assert trace.per_link_transitions() == GOLDEN_TRACE_PER_LINK
        assert trace.total_transitions() == GOLDEN_TRACE_TOTAL_BT
        assert trace.total_flit_traversals() == GOLDEN_TRACE_FLIT_HOPS
        assert len(trace.packets) == GOLDEN_TRACE_PACKETS

    @pytest.mark.parametrize("core", ["event", "stepped"])
    def test_replay_reproduces_pinned_table(self, trace, core):
        from repro.workloads.traces import replay_through_network

        replayed = replay_through_network(trace, core=core)
        assert replayed.ledger.per_link() == GOLDEN_TRACE_PER_LINK
        assert (
            replayed.stats.total_bit_transitions == GOLDEN_TRACE_TOTAL_BT
        )

    def test_reordered_replay_pinned(self, trace):
        from repro.workloads.traces import replay_through_network

        assert (
            trace.reordered("popcount_desc").total_transitions()
            == GOLDEN_TRACE_REORDERED_BT
        )
        replayed = replay_through_network(trace, ordering="popcount_desc")
        assert (
            replayed.stats.total_bit_transitions
            == GOLDEN_TRACE_REORDERED_BT
        )

    def test_replay_campaign_pins_table(self, tmp_path):
        """The pinned table survives the full `sweep --kind replay` path."""
        from repro.experiments import (
            CampaignRunner,
            ResultCache,
            SweepSpec,
        )

        spec = SweepSpec(
            name="golden_replay",
            kind="replay",
            base={"trace": str(GOLDEN_TRACE)},
            axes={"ordering": ["none", "popcount_desc"],
                  "core": ["offline", "both"]},
        )
        runner = CampaignRunner(
            cache=ResultCache(tmp_path / "cache"), workers=1
        )
        campaign = runner.run(spec)
        assert not campaign.errors, campaign.summary()
        for record in campaign.records:
            result = record["result"]
            expected = (
                GOLDEN_TRACE_TOTAL_BT
                if record["config"]["ordering"] == "none"
                else GOLDEN_TRACE_REORDERED_BT
            )
            assert result["total_bit_transitions"] == expected, (
                record["config"]
            )
            if record["config"]["ordering"] == "none":
                assert result["per_link"] == GOLDEN_TRACE_PER_LINK


@pytest.mark.parametrize("data_format", ["fixed8", "float32"])
def test_fig13_dnn_models_golden(
    data_format,
    golden_trained_lenet,
    golden_lenet_image,
    golden_darknet_model,
    golden_darknet_image,
):
    """Both models' normalised-BT rows reproduce Fig. 13."""
    tables = parse_series_tables(GOLDEN[f"fig13_dnn_models_{data_format}"])
    ((_, golden_norm),) = tables.items()

    workloads = {
        "LeNet": (golden_trained_lenet, golden_lenet_image),
        "DarkNet": (golden_darknet_model, golden_darknet_image),
    }
    assert set(golden_norm) == set(workloads)
    for name, (model, image) in workloads.items():
        raw = {}
        for method in OrderingMethod:
            config = AcceleratorConfig(
                data_format=data_format,
                ordering=method,
                max_tasks_per_layer=24,
            )
            result = run_model_on_noc(config, model, image)
            assert result.all_verified, f"{name} {method.value}"
            raw[method.value] = float(result.total_bit_transitions)
        for col, golden_value in golden_norm[name].items():
            assert raw[col] / raw["O0"] == pytest.approx(
                golden_value, abs=EPS
            ), f"{data_format} {name} {col}"


class TestServingConformance:
    """A lone tenant owning the whole mesh IS the paper's model job.

    The serving layer must be a pure re-scheduling of the same
    injection events: one lenet tenant, zero background, same seeds ->
    the fleet reproduces the model job's BT totals and per-link table
    bit-exactly.  This pins the template capture + replay path against
    the direct simulator path.
    """

    def test_single_tenant_matches_model_job_bit_exact(self):
        from repro.dnn.models import build_model
        from repro.dnn.datasets import synthetic_digits
        from repro.serving import ServingConfig, TenantSpec, run_serving

        serving = run_serving(
            ServingConfig(
                tenants=(
                    TenantSpec(
                        name="lenet", workload="model", model="lenet"
                    ),
                ),
                n_requests=1,
            )
        )

        acc = AcceleratorConfig(
            data_format="fixed8",
            ordering=OrderingMethod.BASELINE,
            max_tasks_per_layer=4,
            seed=2025,  # ServingConfig.task_seed default
        )
        model = build_model("lenet", rng=np.random.default_rng(1))
        image = synthetic_digits(1, seed=5).images[0]
        direct = run_model_on_noc(acc, model, image)

        assert (
            serving.total_bit_transitions == direct.total_bit_transitions
        )
        assert serving.per_link == direct.per_link
        assert serving.flit_hops == direct.flit_hops
        (tenant,) = serving.tenants
        assert tenant.bit_transitions == serving.total_bit_transitions
        # Pin the absolute number so template replay can't drift in
        # lockstep with the simulator: regenerating this golden is a
        # deliberate act, like the figure tables above.
        assert serving.total_bit_transitions == 58369
