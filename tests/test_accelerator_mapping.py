"""Tests for repro.accelerator.mapping."""

from __future__ import annotations

import pytest

from repro.accelerator.mapping import (
    make_placement,
    partition_mesh,
    placement_for_nodes,
)
from repro.noc.topology import coordinates


class TestMakePlacement:
    def test_paper_4x4_mc2_layout(self):
        # Fig. 6: the two MCs sit at the row-2 edge routers (8 and 11).
        placement = make_placement(4, 4, 2)
        assert placement.mc_nodes == (8, 11)

    def test_pe_mc_partition(self):
        placement = make_placement(4, 4, 2)
        assert len(placement.pe_nodes) == 14
        assert set(placement.pe_nodes) & set(placement.mc_nodes) == set()
        assert len(placement.pe_nodes) + len(placement.mc_nodes) == 16

    def test_8x8_mc_counts(self):
        for n_mcs in (4, 8):
            placement = make_placement(8, 8, n_mcs)
            assert len(placement.mc_nodes) == n_mcs
            assert len(placement.pe_nodes) == 64 - n_mcs

    def test_mcs_on_edge_columns(self):
        for n_mcs in (2, 4, 8):
            placement = make_placement(8, 8, n_mcs)
            for mc in placement.mc_nodes:
                x, _ = coordinates(mc, 8)
                assert x in (0, 7)

    def test_serving_mc_is_nearest(self):
        from repro.noc.topology import manhattan_distance

        placement = make_placement(4, 4, 2)
        for pe in placement.pe_nodes:
            serving = placement.serving_mc[pe]
            best = min(
                manhattan_distance(pe, mc, 4) for mc in placement.mc_nodes
            )
            assert manhattan_distance(pe, serving, 4) == best

    def test_every_pe_served(self):
        placement = make_placement(8, 8, 4)
        assert set(placement.serving_mc) == set(placement.pe_nodes)

    def test_round_robin_task_assignment(self):
        placement = make_placement(4, 4, 2)
        n = len(placement.pe_nodes)
        assert placement.pe_for_task(0) == placement.pe_nodes[0]
        assert placement.pe_for_task(n) == placement.pe_nodes[0]
        assert placement.pe_for_task(n + 1) == placement.pe_nodes[1]

    def test_too_many_mcs(self):
        with pytest.raises(ValueError):
            make_placement(2, 2, 4)

    def test_distinct_mc_nodes(self):
        placement = make_placement(4, 4, 8)
        assert len(set(placement.mc_nodes)) == 8

    def test_deterministic(self):
        assert make_placement(8, 8, 4) == make_placement(8, 8, 4)


class TestPartitionMesh:
    def test_interleaved_covers_disjoint(self):
        parts = partition_mesh(4, 4, [1, 1])
        all_nodes = sorted(n for p in parts for n in p)
        assert all_nodes == list(range(16))
        assert set(parts[0]).isdisjoint(parts[1])
        # Equal shares stripe even/odd node ids.
        assert parts[0] == tuple(range(0, 16, 2))
        assert parts[1] == tuple(range(1, 16, 2))

    def test_interleaved_weighted(self):
        parts = partition_mesh(4, 4, [3, 1])
        assert len(parts[0]) == 12
        assert len(parts[1]) == 4

    def test_blocks_contiguous(self):
        parts = partition_mesh(4, 4, [1, 1], policy="blocks")
        assert parts[0] == tuple(range(0, 8))
        assert parts[1] == tuple(range(8, 16))

    def test_blocks_every_tenant_nonempty(self):
        parts = partition_mesh(2, 2, [100, 1], policy="blocks")
        assert all(parts)
        assert sorted(n for p in parts for n in p) == [0, 1, 2, 3]

    def test_errors(self):
        with pytest.raises(ValueError):
            partition_mesh(4, 4, [])
        with pytest.raises(ValueError):
            partition_mesh(4, 4, [1, 0])
        with pytest.raises(ValueError):
            partition_mesh(2, 2, [1] * 5)
        with pytest.raises(ValueError):
            partition_mesh(4, 4, [1], policy="diagonal")


class TestPlacementForNodes:
    def test_full_mesh_reproduces_make_placement(self):
        # The bit-exact serving conformance hinges on this: a tenant
        # owning every node gets the whole-mesh placement verbatim.
        for width, height, n_mcs in ((4, 4, 2), (8, 8, 4), (8, 8, 8)):
            full = make_placement(width, height, n_mcs)
            part = placement_for_nodes(
                width, height, n_mcs, tuple(range(width * height))
            )
            assert part == full

    def test_restricted_partition_valid(self):
        nodes = partition_mesh(4, 4, [1, 1])[0]
        placement = placement_for_nodes(4, 4, 2, nodes)
        assert set(placement.mc_nodes) <= set(nodes)
        assert set(placement.pe_nodes) <= set(nodes)
        assert set(placement.mc_nodes).isdisjoint(placement.pe_nodes)
        assert set(placement.serving_mc) == set(placement.pe_nodes)
        assert set(placement.serving_mc.values()) <= set(
            placement.mc_nodes
        )

    def test_errors(self):
        with pytest.raises(ValueError):
            placement_for_nodes(4, 4, 1, (0, 0, 1))
        with pytest.raises(ValueError):
            placement_for_nodes(4, 4, 1, ())
        with pytest.raises(ValueError):
            placement_for_nodes(4, 4, 1, (99,))
        with pytest.raises(ValueError):
            placement_for_nodes(4, 4, 2, (3, 7))
