"""Tests for repro.ordering.batch (vectorised batch ordering).

The contract under test is bit-identity with the scalar strategies:
``np.argsort(kind="stable")`` over negated counts must reproduce the
scalar sort's ``(-count, i)`` tie-break *exactly* — including the
padding-sink behaviour (zero-padded slots fall below every real value
in arrival order) and the pinned-bias final slot, which is appended
after ordering and must never move.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerator.flitize import TaskCodec
from repro.ordering.batch import (
    argsort_popcount,
    deal_matrix,
    order_batch,
    undeal_matrix,
)
from repro.ordering.strategies import (
    FillOrder,
    OrderingMethod,
    apply_method,
    deal_into_rows,
    sort_by_popcount,
)


class TestArgsortPopcount:
    @pytest.mark.parametrize("descending", [True, False])
    def test_reproduces_scalar_sort_exactly(self, descending):
        rng = np.random.default_rng(0)
        matrix = rng.integers(0, 256, size=(40, 31), dtype=np.uint8)
        perms = argsort_popcount(matrix, descending=descending)
        for row, perm in zip(matrix, perms):
            sorted_words, ref_perm = sort_by_popcount(
                row.tolist(), descending=descending
            )
            assert perm.tolist() == ref_perm
            assert np.take(row, perm).tolist() == sorted_words

    def test_stable_tie_break_is_arrival_order(self):
        # 3, 5, 6 all have two '1' bits: equal counts keep positions.
        matrix = np.array([[3, 5, 6, 0, 7]], dtype=np.uint8)
        assert argsort_popcount(matrix)[0].tolist() == [4, 0, 1, 2, 3]

    def test_padding_zeros_sink_in_arrival_order(self):
        # Zero-padded tail slots must land below every real value and
        # keep their relative order (the flitize padding contract).
        matrix = np.array([[9, 0, 1, 0, 0]], dtype=np.uint8)
        perm = argsort_popcount(matrix)[0].tolist()
        assert perm == [0, 2, 1, 3, 4]

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            argsort_popcount(np.zeros(4, dtype=np.uint8))


class TestOrderBatch:
    @pytest.mark.parametrize("method", list(OrderingMethod))
    def test_matches_scalar_apply_method(self, method):
        rng = np.random.default_rng(1)
        inputs = rng.integers(0, 2**32, size=(15, 26), dtype=np.uint32)
        weights = rng.integers(0, 2**32, size=(15, 26), dtype=np.uint32)
        batch = order_batch(method, inputs, weights)
        for t in range(15):
            ref = apply_method(
                method, inputs[t].tolist(), weights[t].tolist()
            )
            assert batch.inputs[t].tolist() == list(ref.inputs)
            assert batch.weights[t].tolist() == list(ref.weights)
            assert batch.input_perm[t].tolist() == list(ref.input_perm)
            assert batch.weight_perm[t].tolist() == list(ref.weight_perm)
            assert batch.paired == ref.paired

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="equal-shape"):
            order_batch(
                OrderingMethod.AFFILIATED,
                np.zeros((2, 3), dtype=np.uint8),
                np.zeros((2, 4), dtype=np.uint8),
            )


class TestDealMatrix:
    @pytest.mark.parametrize("fill", list(FillOrder))
    def test_matches_scalar_deal(self, fill):
        rng = np.random.default_rng(2)
        matrix = rng.integers(0, 256, size=(6, 24), dtype=np.uint8)
        rows = deal_matrix(matrix, 4, fill)
        for t in range(6):
            assert rows[t].tolist() == deal_into_rows(
                matrix[t].tolist(), 4, fill
            )

    @pytest.mark.parametrize("fill", list(FillOrder))
    def test_undeal_inverts(self, fill):
        rng = np.random.default_rng(3)
        matrix = rng.integers(0, 256, size=(5, 18), dtype=np.uint8)
        assert undeal_matrix(
            deal_matrix(matrix, 3, fill), fill
        ).tolist() == matrix.tolist()

    def test_rejects_ragged_layout(self):
        with pytest.raises(ValueError, match="not divisible"):
            deal_matrix(np.zeros((2, 7), dtype=np.uint8), 3)

    def test_rejects_bad_row_count(self):
        with pytest.raises(ValueError, match="positive"):
            deal_matrix(np.zeros((2, 4), dtype=np.uint8), 0)


class TestPinnedBiasAndPaddingThroughCodec:
    """The flitize-level consequences of the stable batch sort."""

    def test_bias_rides_final_slot_under_batch_ordering(self):
        # Bias word 0xFF has the highest possible popcount; if it were
        # sorted it would lead the sequence.  It must stay in the last
        # flit's last weight lane under both codecs.
        codec = TaskCodec(values_per_flit=4, word_width=8)
        inputs, weights, bias = [1, 2, 3], [4, 8, 16], 0xFF
        for method in OrderingMethod:
            (batch,) = codec.encode_batch(
                np.array([inputs], dtype=np.uint8),
                np.array([weights], dtype=np.uint8),
                [bias],
                method,
            )
            scalar = codec.encode(inputs, weights, bias, method)
            assert batch == scalar
            last_lanes = codec.decode(batch)
            assert last_lanes.bias == bias

    def test_padding_zeros_align_across_flits(self):
        # 3 real pairs in a 2-flit packet (h=2, 4 slots): the O1 sort
        # sinks the padded zero below real values identically in both
        # codecs, including the permutation metadata.
        codec = TaskCodec(values_per_flit=4, word_width=8)
        inputs, weights = [7, 1, 2], [3, 12, 48]
        (batch,) = codec.encode_batch(
            np.array([inputs], dtype=np.uint8),
            np.array([weights], dtype=np.uint8),
            [0],
            OrderingMethod.AFFILIATED,
        )
        scalar = codec.encode(inputs, weights, 0, OrderingMethod.AFFILIATED)
        assert batch == scalar
        assert batch.weight_perm == scalar.weight_perm


class TestOrderingProperties:
    @settings(deadline=None, max_examples=60)
    @given(
        st.sampled_from(list(OrderingMethod)),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_batch_equals_scalar_on_random_grids(
        self, method, n_pairs, n_tasks, seed
    ):
        rng = np.random.default_rng(seed)
        inputs = rng.integers(
            0, 2**16, size=(n_tasks, n_pairs), dtype=np.uint16
        )
        weights = rng.integers(
            0, 2**16, size=(n_tasks, n_pairs), dtype=np.uint16
        )
        batch = order_batch(method, inputs, weights)
        for t in range(n_tasks):
            ref = apply_method(
                method, inputs[t].tolist(), weights[t].tolist()
            )
            assert batch.inputs[t].tolist() == list(ref.inputs)
            assert batch.weight_perm[t].tolist() == list(ref.weight_perm)
