"""Tests for the NoC network: delivery, flow control, BT accounting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits.popcount import popcount
from repro.noc.flit import make_packet
from repro.noc.network import Network, NoCConfig, SimulationTimeout
from repro.noc.routing import Port


def small_net(**kwargs) -> Network:
    defaults = dict(width=4, height=4, link_width=64)
    defaults.update(kwargs)
    return Network(NoCConfig(**defaults))


class TestDelivery:
    def test_single_packet(self):
        net = small_net()
        pkt = make_packet(0, 15, [1, 2, 3], 64)
        net.send_packet(pkt)
        stats = net.run_until_drained()
        assert stats.packets_delivered == 1
        assert net.nis[15].delivered[0] is pkt
        assert pkt.delivered_cycle is not None

    def test_self_delivery(self):
        net = small_net()
        net.send_packet(make_packet(3, 3, [9], 64))
        stats = net.run_until_drained()
        assert stats.packets_delivered == 1

    def test_payload_integrity(self):
        net = small_net()
        payloads = [0xDEADBEEF, 0x12345678, 0x0F0F0F0F]
        net.send_packet(make_packet(2, 13, list(payloads), 64))
        net.run_until_drained()
        delivered = net.nis[13].delivered[0]
        assert [f.payload for f in delivered.flits] == payloads

    def test_all_to_one(self):
        net = small_net()
        for src in range(16):
            net.send_packet(make_packet(src, 0, [src, src + 100], 64))
        stats = net.run_until_drained()
        assert stats.packets_delivered == 16
        assert len(net.nis[0].delivered) == 16

    def test_all_to_all(self):
        net = small_net()
        count = 0
        for src in range(16):
            for dst in range(16):
                if src != dst:
                    net.send_packet(make_packet(src, dst, [src * 16 + dst], 64))
                    count += 1
        stats = net.run_until_drained(max_cycles=50_000)
        assert stats.packets_delivered == count

    def test_flit_order_preserved(self):
        # Wormhole switching must keep a packet's flits in order.
        net = small_net()
        net.send_packet(make_packet(0, 15, list(range(10)), 64))
        net.run_until_drained()
        delivered = net.nis[15].delivered[0]
        assert [f.index for f in delivered.flits] == list(range(10))

    def test_invalid_nodes_rejected(self):
        net = small_net()
        with pytest.raises(ValueError):
            net.send_packet(make_packet(0, 99, [1], 64))

    def test_wrong_flit_width_rejected(self):
        net = small_net()
        with pytest.raises(ValueError):
            net.send_packet(make_packet(0, 1, [1], 32))

    def test_timeout_raises(self):
        net = small_net()
        net.send_packet(make_packet(0, 15, [1] * 8, 64))
        with pytest.raises(SimulationTimeout):
            net.run_until_drained(max_cycles=2)


class TestLatency:
    def test_latency_scales_with_distance(self):
        net = small_net()
        near = make_packet(0, 1, [1], 64)
        far = make_packet(0, 15, [1], 64)
        net.send_packet(near)
        net.send_packet(far)
        net.run_until_drained()
        assert far.latency > near.latency

    def test_min_latency_is_hops_plus_overhead(self):
        net = small_net()
        pkt = make_packet(0, 3, [7], 64)  # 3 hops east
        net.send_packet(pkt)
        net.run_until_drained()
        # 3 inter-router hops + injection + ejection under zero load.
        assert 4 <= pkt.latency <= 8

    def test_mean_latency_stat(self):
        net = small_net()
        for dst in (1, 2, 3):
            net.send_packet(make_packet(0, dst, [dst], 64))
        stats = net.run_until_drained()
        assert stats.mean_latency > 0
        assert len(stats.packet_latencies) == 3


class TestBTAccounting:
    def test_single_hop_bt_matches_manual(self):
        # Two packets over the same single link: BT = popcount(xor).
        net = small_net(record_ejection=False)
        net.send_packet(make_packet(0, 1, [0x00FF], 64))
        net.run_until_drained()
        net.send_packet(make_packet(0, 1, [0x0F0F], 64))
        net.run_until_drained()
        assert net.stats.total_bit_transitions == popcount(0x00FF ^ 0x0F0F)

    def test_intra_packet_bt(self):
        net = small_net(record_ejection=False)
        net.send_packet(make_packet(0, 1, [0b1111, 0b0000, 0b1010], 64))
        net.run_until_drained()
        assert net.stats.total_bit_transitions == 4 + 2

    def test_bt_scales_with_hops(self):
        # The same 2-flit packet over 1 hop vs 3 hops: 3x transitions.
        one = small_net(record_ejection=False)
        one.send_packet(make_packet(0, 1, [0xFF, 0x00], 64))
        one.run_until_drained()
        three = small_net(record_ejection=False)
        three.send_packet(make_packet(0, 3, [0xFF, 0x00], 64))
        three.run_until_drained()
        assert three.stats.total_bit_transitions == (
            3 * one.stats.total_bit_transitions
        )

    def test_ejection_recording_adds_links(self):
        with_ej = small_net(record_ejection=True)
        with_ej.send_packet(make_packet(0, 1, [0xFF, 0x00], 64))
        with_ej.run_until_drained()
        without = small_net(record_ejection=False)
        without.send_packet(make_packet(0, 1, [0xFF, 0x00], 64))
        without.run_until_drained()
        assert (
            with_ej.stats.total_bit_transitions
            > without.stats.total_bit_transitions
        )

    def test_ledger_matches_stats(self):
        net = small_net()
        for src in range(4):
            net.send_packet(make_packet(src, 15, [src * 7, src], 64))
        net.run_until_drained()
        assert (
            net.ledger.total_transitions == net.stats.total_bit_transitions
        )

    def test_per_link_names(self):
        net = small_net(record_ejection=True)
        net.send_packet(make_packet(0, 1, [1], 64))
        net.run_until_drained()
        names = set(net.ledger.per_link())
        assert "R0.EAST" in names
        assert "R1.LOCAL" in names


class TestFlowControl:
    def test_buffers_never_overflow_under_burst(self):
        # Many long packets to one destination force backpressure; the
        # credit protocol must keep every buffer within capacity (the
        # router raises ProtocolError otherwise).
        net = small_net()
        for src in range(8):
            net.send_packet(
                make_packet(src, 15, [src] * 20, 64)
            )
        stats = net.run_until_drained(max_cycles=20_000)
        assert stats.packets_delivered == 8

    def test_vc_depth_one_still_works(self):
        net = small_net(vc_depth=1)
        for src in (0, 5, 10):
            net.send_packet(make_packet(src, 15, [1, 2, 3], 64))
        stats = net.run_until_drained(max_cycles=20_000)
        assert stats.packets_delivered == 3

    def test_single_vc_still_works(self):
        net = small_net(n_vcs=1)
        for src in (0, 1, 2, 3):
            net.send_packet(make_packet(src, 12, [src] * 5, 64))
        stats = net.run_until_drained(max_cycles=20_000)
        assert stats.packets_delivered == 4


class TestStatsConservation:
    @settings(deadline=None, max_examples=15)
    @given(st.data())
    def test_random_traffic_conservation(self, data):
        """Property: every injected packet is delivered exactly once,
        and flit hops >= flits * manhattan distance."""
        net = small_net()
        n_packets = data.draw(st.integers(min_value=1, max_value=12))
        total_flits = 0
        for i in range(n_packets):
            src = data.draw(st.integers(min_value=0, max_value=15))
            dst = data.draw(st.integers(min_value=0, max_value=15))
            length = data.draw(st.integers(min_value=1, max_value=6))
            payloads = [
                data.draw(st.integers(min_value=0, max_value=2**64 - 1))
                for _ in range(length)
            ]
            net.send_packet(make_packet(src, dst, payloads, 64))
            total_flits += length
        stats = net.run_until_drained(max_cycles=60_000)
        assert stats.packets_delivered == n_packets
        assert stats.flits_injected == total_flits
        assert stats.flit_hops >= total_flits  # at least ejection hop

    def test_yx_routing_also_delivers(self):
        net = small_net(routing="yx")
        for src in range(16):
            net.send_packet(make_packet(src, 15 - src, [src], 64))
        stats = net.run_until_drained(max_cycles=20_000)
        assert stats.packets_delivered == 16


class TestInjectionRecording:
    def test_injection_links_counted_when_enabled(self):
        net = small_net(record_injection=True, record_ejection=False)
        net.send_packet(make_packet(0, 1, [0xFF, 0x00], 64))
        net.run_until_drained()
        assert "NI0.INJECT" in net.ledger.per_link()


class TestLinkLatency:
    def test_latency_slows_delivery(self):
        fast = small_net(link_latency=1)
        slow = small_net(link_latency=3)
        for net in (fast, slow):
            net.send_packet(make_packet(0, 15, [7], 64))
            net.run_until_drained()
        assert (
            slow.nis[15].delivered[0].latency
            > fast.nis[15].delivered[0].latency
        )

    def test_latency_preserves_delivery(self):
        # Contended traffic interleaves differently at different
        # latencies (so BT totals may differ), but every packet still
        # arrives intact.
        for latency in (1, 2, 4):
            net = small_net(link_latency=latency)
            for src in range(6):
                net.send_packet(make_packet(src, 15, [src * 3, src], 64))
            stats = net.run_until_drained(max_cycles=30_000)
            assert stats.packets_delivered == 6

    def test_latency_invariant_bt_without_contention(self):
        # A single packet sees no interleaving: the flit sequence per
        # link — and hence the BT total — is latency-independent.
        totals = set()
        for latency in (1, 3):
            net = small_net(link_latency=latency, record_ejection=False)
            net.send_packet(make_packet(0, 15, [0xAB, 0x12, 0xFF], 64))
            stats = net.run_until_drained()
            totals.add(stats.total_bit_transitions)
        assert len(totals) == 1

    def test_invalid_latency(self):
        with pytest.raises(ValueError):
            NoCConfig(link_latency=0)


class TestWestFirstRouting:
    def test_delivers_everything(self):
        net = small_net(routing="west_first")
        for src in range(16):
            for dst in (0, 5, 15):
                if src != dst:
                    net.send_packet(make_packet(src, dst, [src], 64))
        stats = net.run_until_drained(max_cycles=40_000)
        assert stats.packets_delivered == 16 * 3 - 3

    def test_differs_from_xy_for_eastbound(self):
        from repro.noc.routing import west_first_route, xy_route
        from repro.noc.routing import Port

        # Node 0 -> node 5 (east+south): west-first goes south first.
        assert xy_route(0, 5, 4) is Port.EAST
        assert west_first_route(0, 5, 4) is Port.SOUTH

    def test_west_always_first(self):
        from repro.noc.routing import west_first_route
        from repro.noc.routing import Port

        # Any destination to the west forces WEST immediately.
        assert west_first_route(5, 4, 4) is Port.WEST
        assert west_first_route(15, 0, 4) is Port.WEST
