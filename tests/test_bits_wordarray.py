"""WordArray: numpy-backed immutable word sequences (tuple-facing).

The trace storage contract: array-backed columns must look exactly
like the tuples they replaced (indexing, iteration, equality,
hashing), degrade to an arbitrary-precision tuple backing on >64-bit
values, and expose their numpy backing for array-native consumers.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits.wordarray import WordArray, as_int64_array


class TestConstruction:
    def test_from_list_is_array_backed(self):
        wa = WordArray([1, 2, 3])
        assert wa.array is not None
        assert wa.array.dtype == np.uint64
        assert wa.to_tuple() == (1, 2, 3)

    def test_from_ndarray_adopts_without_copy(self):
        arr = np.array([5, 6], dtype=np.uint64)
        wa = WordArray(arr)
        assert wa.array is arr

    def test_from_ndarray_casts_other_int_dtypes(self):
        wa = WordArray(np.array([1, 2], dtype=np.int32))
        assert wa.array.dtype == np.uint64
        assert wa.to_tuple() == (1, 2)

    def test_rejects_non_integer_ndarray(self):
        with pytest.raises(ValueError, match="integer word array"):
            WordArray(np.array([1.5, 2.5]))

    def test_rejects_2d_ndarray(self):
        with pytest.raises(ValueError, match="1-D"):
            WordArray(np.zeros((2, 2), dtype=np.uint64))

    def test_rewrap_is_idempotent_and_shares_backing(self):
        wa = WordArray([1, 2, 3])
        again = WordArray(wa, np.uint64)
        assert again.array is wa.array
        assert again == wa

    def test_int64_dtype_for_signed_metadata(self):
        wa = WordArray([-1, 0, 7], np.int64)
        assert wa.array.dtype == np.int64
        assert wa.to_tuple() == (-1, 0, 7)

    def test_wide_values_fall_back_to_tuple(self):
        wide = (1 << 96, 3)
        wa = WordArray(wide)
        assert wa.array is None
        assert wa.to_tuple() == wide
        assert list(wa) == list(wide)

    def test_negative_value_falls_back_under_uint64(self):
        wa = WordArray([-1, 2])
        assert wa.array is None
        assert wa.to_tuple() == (-1, 2)

    def test_empty(self):
        wa = WordArray(())
        assert len(wa) == 0
        assert wa.array is not None and wa.array.size == 0
        assert wa.to_tuple() == ()

    def test_generator_input(self):
        wa = WordArray(iter([4, 5]))
        assert wa.to_tuple() == (4, 5)


class TestSequenceProtocol:
    def test_getitem_returns_python_ints(self):
        wa = WordArray([9, 8, 7])
        assert wa[0] == 9 and isinstance(wa[0], int)
        assert wa[-1] == 7
        assert (9).bit_count() == wa[0].bit_count()

    def test_slice_returns_wordarray(self):
        wa = WordArray([1, 2, 3, 4])
        sl = wa[1:3]
        assert isinstance(sl, WordArray)
        assert sl.to_tuple() == (2, 3)

    def test_iter_yields_python_ints(self):
        wa = WordArray([3, 1])
        values = list(wa)
        assert values == [3, 1]
        assert all(isinstance(v, int) for v in values)

    def test_equality_with_tuples_lists_and_wordarrays(self):
        wa = WordArray([1, 2])
        assert wa == (1, 2)
        assert wa == [1, 2]
        assert (1, 2) == wa.to_tuple()
        assert wa == WordArray((1, 2))
        assert wa != (1, 3)
        assert wa != (1, 2, 3)
        # Mixed backings still compare by value.
        assert WordArray((1 << 96,)) == WordArray((1 << 96,))
        assert wa != WordArray((1 << 96, 2))

    def test_hash_matches_tuple(self):
        wa = WordArray([1, 2])
        assert hash(wa) == hash((1, 2))
        assert {wa: "x"}[(1, 2)] == "x"

    def test_take_preserves_order_and_backing(self):
        wa = WordArray([10, 20, 30, 40])
        picked = wa.take(np.array([2, 0]))
        assert picked.to_tuple() == (30, 10)
        assert picked.array is not None
        wide = WordArray((1 << 96, 5, 6))
        assert wide.take([1, 2]).to_tuple() == (5, 6)

    def test_repr_truncates(self):
        short = repr(WordArray([1, 2]))
        assert "1, 2" in short
        long = repr(WordArray(range(20)))
        assert "20 values" in long


class TestAsInt64Array:
    def test_passthrough_for_int64_backing(self):
        wa = WordArray([1, 2], np.int64)
        assert as_int64_array(wa) is wa.array

    def test_casts_uint64_backing(self):
        wa = WordArray([1, 2])
        out = as_int64_array(wa)
        assert out.dtype == np.int64
        assert out.tolist() == [1, 2]

    def test_plain_tuple(self):
        out = as_int64_array((3, 4))
        assert out.dtype == np.int64
        assert out.tolist() == [3, 4]


class TestProperties:
    @settings(deadline=None, max_examples=60)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=2**80),
            max_size=12,
        )
    )
    def test_behaves_like_the_tuple_it_wraps(self, values):
        wa = WordArray(values)
        ref = tuple(values)
        assert len(wa) == len(ref)
        assert wa.to_tuple() == ref
        assert tuple(wa) == ref
        assert wa == ref
        for i in range(len(ref)):
            assert wa[i] == ref[i]
        assert wa[1:].to_tuple() == ref[1:]
        if any(v > 2**64 - 1 for v in values):
            assert wa.array is None
        else:
            assert wa.array is not None
