"""Result store persistence and the report aggregation layer."""

from __future__ import annotations

import csv

import pytest

from repro.experiments.report import (
    fig12_report,
    mesh_row_key,
    model_row_key,
    pivot,
    reduction_series,
)
from repro.experiments.store import ResultStore


def make_record(
    job_id="j1",
    width=4,
    height=4,
    n_mcs=2,
    ordering="O0",
    data_format="fixed8",
    bt=1000,
    status="ok",
    model="lenet",
):
    return {
        "job_id": job_id,
        "campaign": "t",
        "model": model,
        "model_seed": 1,
        "image_seed": 5,
        "cached": False,
        "config": {
            "width": width,
            "height": height,
            "n_mcs": n_mcs,
            "ordering": ordering,
            "data_format": data_format,
            "max_tasks_per_layer": 2,
            "seed": 7,
        },
        "status": status,
        "result": None
        if status != "ok"
        else {
            "total_bit_transitions": bt,
            "total_cycles": 100,
            "flit_hops": 50,
            "tasks_verified": 2,
            "tasks_total": 2,
            "mean_packet_latency": 4.5,
            "ordering_latency_cycles": 0,
        },
        "error": None if status == "ok" else "boom",
    }


class TestResultStore:
    def test_append_load_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "runs.jsonl")
        records = [make_record("a"), make_record("b", ordering="O2")]
        store.extend(records)
        assert store.load() == records

    def test_missing_file_loads_empty(self, tmp_path):
        assert ResultStore(tmp_path / "nope.jsonl").load() == []

    def test_corrupt_lines_are_skipped(self, tmp_path):
        store = ResultStore(tmp_path / "runs.jsonl")
        store.append(make_record("a"))
        with store.path.open("a") as fh:
            fh.write("not json\n")  # torn append
            fh.write("[1, 2]\n")  # parseable but not a record
        store.append(make_record("b"))
        records = store.load()
        assert [r["job_id"] for r in records] == ["a", "b"]
        assert store.corrupt_skipped == 2

    def test_latest_by_job_keeps_newest(self, tmp_path):
        store = ResultStore(tmp_path / "runs.jsonl")
        store.append(make_record("a", bt=1))
        store.append(make_record("a", bt=2))
        latest = store.latest_by_job()
        assert latest["a"]["result"]["total_bit_transitions"] == 2

    def test_to_csv(self, tmp_path):
        store = ResultStore(tmp_path / "runs.jsonl")
        store.append(make_record("a", bt=123))
        store.append(make_record("bad", status="error"))
        out = tmp_path / "out.csv"
        assert store.to_csv(out) == 1  # error rows excluded
        with out.open() as fh:
            rows = list(csv.DictReader(fh))
        assert rows[0]["job_id"] == "a"
        assert rows[0]["total_bit_transitions"] == "123"
        assert rows[0]["ordering"] == "O0"


GRID = [
    make_record("a", ordering="O0", bt=1000),
    make_record("b", ordering="O1", bt=800),
    make_record("c", ordering="O2", bt=600),
    make_record("d", width=8, height=8, n_mcs=4, ordering="O0", bt=2000),
    make_record("e", width=8, height=8, n_mcs=4, ordering="O2", bt=1000),
]


class TestReport:
    def test_pivot_by_mesh(self):
        series = pivot(GRID)
        assert series["4x4 MC2"] == {"O0": 1000.0, "O1": 800.0,
                                     "O2": 600.0}
        assert series["8x8 MC4"]["O2"] == 1000.0

    def test_pivot_skips_errors(self):
        series = pivot(GRID + [make_record("x", status="error")])
        assert series == pivot(GRID)

    def test_pivot_by_model(self):
        records = [
            make_record("a", model="lenet", bt=10),
            make_record("b", model="darknet", bt=20),
        ]
        series = pivot(records, row_key=model_row_key)
        assert set(series) == {"lenet", "darknet"}

    def test_reduction_series(self):
        reductions = reduction_series(pivot(GRID))
        assert reductions["4x4 MC2"]["O1"] == pytest.approx(20.0)
        assert reductions["4x4 MC2"]["O2"] == pytest.approx(40.0)
        assert reductions["8x8 MC4"] == {"O2": pytest.approx(50.0)}

    def test_reduction_series_requires_baseline(self):
        assert reduction_series({"row": {"O1": 5.0}}) == {}

    def test_fig12_report_renders_per_format(self):
        mixed = GRID + [
            make_record("f", data_format="float32", ordering="O0",
                        bt=4000),
            make_record("g", data_format="float32", ordering="O2",
                        bt=3000),
        ]
        text = fig12_report(mixed)
        assert "Absolute BTs (fixed8)" in text
        assert "Absolute BTs (float32)" in text
        assert "Reductions vs O0" in text
        assert "4x4 MC2" in text

    def test_fig12_report_empty(self):
        assert "no successful records" in fig12_report([])

    def test_mesh_row_key(self):
        assert mesh_row_key(make_record()) == "4x4 MC2"
