"""Result store persistence and the report aggregation layer."""

from __future__ import annotations

import csv

import pytest

from repro.experiments.report import (
    campaign_report,
    fig12_report,
    layer_pivot,
    link_pivot,
    mesh_row_key,
    model_row_key,
    pivot,
    reduction_series,
)
from repro.experiments.store import ResultStore


def make_record(
    job_id="j1",
    width=4,
    height=4,
    n_mcs=2,
    ordering="O0",
    data_format="fixed8",
    bt=1000,
    status="ok",
    model="lenet",
):
    return {
        "job_id": job_id,
        "campaign": "t",
        "model": model,
        "model_seed": 1,
        "image_seed": 5,
        "cached": False,
        "config": {
            "width": width,
            "height": height,
            "n_mcs": n_mcs,
            "ordering": ordering,
            "data_format": data_format,
            "max_tasks_per_layer": 2,
            "seed": 7,
        },
        "status": status,
        "result": None
        if status != "ok"
        else {
            "total_bit_transitions": bt,
            "total_cycles": 100,
            "flit_hops": 50,
            "tasks_verified": 2,
            "tasks_total": 2,
            "mean_packet_latency": 4.5,
            "ordering_latency_cycles": 0,
        },
        "error": None if status == "ok" else "boom",
    }


class TestResultStore:
    def test_append_load_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "runs.jsonl")
        records = [make_record("a"), make_record("b", ordering="O2")]
        store.extend(records)
        assert store.load() == records

    def test_missing_file_loads_empty(self, tmp_path):
        assert ResultStore(tmp_path / "nope.jsonl").load() == []

    def test_corrupt_lines_are_skipped(self, tmp_path):
        store = ResultStore(tmp_path / "runs.jsonl")
        store.append(make_record("a"))
        with store.path.open("a") as fh:
            fh.write("not json\n")  # torn append
            fh.write("[1, 2]\n")  # parseable but not a record
        store.append(make_record("b"))
        records = store.load()
        assert [r["job_id"] for r in records] == ["a", "b"]
        assert store.corrupt_skipped == 2

    def test_latest_by_job_keeps_newest(self, tmp_path):
        store = ResultStore(tmp_path / "runs.jsonl")
        store.append(make_record("a", bt=1))
        store.append(make_record("a", bt=2))
        latest = store.latest_by_job()
        assert latest["a"]["result"]["total_bit_transitions"] == 2

    def test_to_csv(self, tmp_path):
        store = ResultStore(tmp_path / "runs.jsonl")
        store.append(make_record("a", bt=123))
        store.append(make_record("bad", status="error"))
        out = tmp_path / "out.csv"
        assert store.to_csv(out) == 1  # error rows excluded
        with out.open() as fh:
            rows = list(csv.DictReader(fh))
        assert rows[0]["job_id"] == "a"
        assert rows[0]["total_bit_transitions"] == "123"
        assert rows[0]["ordering"] == "O0"


GRID = [
    make_record("a", ordering="O0", bt=1000),
    make_record("b", ordering="O1", bt=800),
    make_record("c", ordering="O2", bt=600),
    make_record("d", width=8, height=8, n_mcs=4, ordering="O0", bt=2000),
    make_record("e", width=8, height=8, n_mcs=4, ordering="O2", bt=1000),
]


class TestReport:
    def test_pivot_by_mesh(self):
        series = pivot(GRID)
        assert series["4x4 MC2"] == {"O0": 1000.0, "O1": 800.0,
                                     "O2": 600.0}
        assert series["8x8 MC4"]["O2"] == 1000.0

    def test_pivot_skips_errors(self):
        series = pivot(GRID + [make_record("x", status="error")])
        assert series == pivot(GRID)

    def test_pivot_by_model(self):
        records = [
            make_record("a", model="lenet", bt=10),
            make_record("b", model="darknet", bt=20),
        ]
        series = pivot(records, row_key=model_row_key)
        assert set(series) == {"lenet", "darknet"}

    def test_reduction_series(self):
        reductions = reduction_series(pivot(GRID))
        assert reductions["4x4 MC2"]["O1"] == pytest.approx(20.0)
        assert reductions["4x4 MC2"]["O2"] == pytest.approx(40.0)
        assert reductions["8x8 MC4"] == {"O2": pytest.approx(50.0)}

    def test_reduction_series_requires_baseline(self):
        assert reduction_series({"row": {"O1": 5.0}}) == {}

    def test_fig12_report_renders_per_format(self):
        mixed = GRID + [
            make_record("f", data_format="float32", ordering="O0",
                        bt=4000),
            make_record("g", data_format="float32", ordering="O2",
                        bt=3000),
        ]
        text = fig12_report(mixed)
        assert "Absolute BTs (fixed8)" in text
        assert "Absolute BTs (float32)" in text
        assert "Reductions vs O0" in text
        assert "4x4 MC2" in text

    def test_fig12_report_empty(self):
        assert "no successful records" in fig12_report([])

    def test_mesh_row_key(self):
        assert mesh_row_key(make_record()) == "4x4 MC2"


class TestFailedJobsSkipped:
    """Regression: a store mixing failed and malformed records must
    still report the successful points — with the skips surfaced, not
    by raising on the missing result fields."""

    def mixed(self):
        return GRID + [
            make_record("err", status="error"),
            # ok-status record whose result payload went missing
            # (older store generation / foreign writer).
            {**make_record("hollow"), "result": None},
            # ok-status record whose result lacks the pivoted field.
            {**make_record("partial"), "result": {"something_else": 1}},
        ]

    def test_campaign_report_does_not_raise(self):
        text = campaign_report(self.mixed())
        assert "4x4 MC2" in text  # the good records still render

    def test_campaign_report_matches_clean_grid(self):
        assert campaign_report(self.mixed()) == campaign_report(GRID)

    def test_skipped_records_reasons(self):
        from repro.experiments.report import skipped_records

        skipped = dict(
            (record["job_id"], reason)
            for record, reason in skipped_records(self.mixed())
        )
        assert skipped == {
            "err": "boom",
            "hollow": "ok record carries no result",
        }

    def test_all_failed_reports_empty(self):
        records = [make_record("e1", status="error"),
                   make_record("e2", status="error")]
        assert campaign_report(records) == "(no successful records)"

    def test_pivot_skips_partial_results(self):
        series = pivot(GRID + [{**make_record("partial", bt=1),
                                "result": {"oops": 1}}])
        assert series == pivot(GRID)


class TestCoreAwareReport:
    """A --cores cross-check must neither overwrite nor double-count."""

    def with_core(self, record, core):
        out = {**record, "config": {**record["config"], "core": core}}
        return out

    def cross_core_records(self):
        base = make_record("a", ordering="O0", bt=1000)
        return [
            self.with_core(base, "event"),
            self.with_core(make_record("b", ordering="O0", bt=1000),
                           "stepped"),
        ]

    def test_mesh_pivot_keeps_both_cores(self):
        text = campaign_report(self.cross_core_records())
        assert "O0@event" in text
        assert "O0@stepped" in text

    def test_link_pivot_does_not_double_count(self):
        records = self.cross_core_records()
        for record in records:
            record["result"]["per_link"] = {"R0.EAST": 1000}
        text = campaign_report(records, "link")
        assert "2000.00" not in text
        assert text.count("1000.00") == 2

    def test_single_core_reports_unchanged(self):
        assert "@" not in campaign_report(GRID)

    def test_reduction_tables_survive_core_columns(self):
        """Each core column reduces against its own O0 baseline."""
        records = []
        for core in ("event", "stepped"):
            records.append(self.with_core(
                make_record(f"o0-{core}", ordering="O0", bt=1000), core))
            records.append(self.with_core(
                make_record(f"o2-{core}", ordering="O2", bt=600), core))
        text = campaign_report(records)
        assert "Reductions vs O0" in text
        assert "O2@event" in text
        series = pivot(records, col_key=lambda r: (
            f"{r['config']['ordering']}@{r['config']['core']}"))
        reductions = reduction_series(series)
        assert reductions["4x4 MC2"]["O2@event"] == pytest.approx(40.0)
        assert reductions["4x4 MC2"]["O2@stepped"] == pytest.approx(40.0)
        assert "O0@event" not in reductions["4x4 MC2"]


def make_synthetic_record(job_id="s1", pattern="uniform", bt=500,
                          per_link=None, payload="random"):
    return {
        "job_id": job_id,
        "campaign": "t",
        "kind": "synthetic",
        "model": None,
        "cached": False,
        "config": {
            "traffic": {"pattern": pattern, "payload": payload,
                        "n_packets": 50, "seed": 7},
            "noc": {"width": 4, "height": 4, "link_width": 128},
        },
        "status": "ok",
        "result": {
            "total_bit_transitions": bt,
            "total_cycles": 90,
            "flit_hops": 40,
            "packets_injected": 50,
            "packets_delivered": 50,
            "flits_injected": 200,
            "mean_packet_latency": 6.5,
            "per_link": per_link or {"R0.EAST": bt},
        },
        "error": None,
    }


def with_layers(record, layers):
    record["result"]["layers"] = [
        {"layer_name": name, "n_tasks": 1, "total_neurons": 1,
         "packets": 1, "flits": 4, "bit_transitions": bts, "cycles": 10}
        for name, bts in layers
    ]
    return record


class TestKindAwarePivots:
    def test_layer_pivot_sums_model_records(self):
        records = [
            with_layers(make_record("a", ordering="O0"),
                        [("conv1", 100), ("fc1", 300)]),
            with_layers(make_record("b", ordering="O2"),
                        [("conv1", 60), ("fc1", 200)]),
        ]
        series = layer_pivot(records)
        assert series == {
            "conv1": {"O0": 100.0, "O2": 60.0},
            "fc1": {"O0": 300.0, "O2": 200.0},
        }

    def test_layer_pivot_fans_out_batch_images(self):
        record = make_record("a", ordering="O0")
        record["kind"] = "batch"
        record["result"]["images"] = [
            {"layers": [{"layer_name": "conv1", "bit_transitions": 40}]},
            {"layers": [{"layer_name": "conv1", "bit_transitions": 2}]},
        ]
        assert layer_pivot([record]) == {"conv1": {"O0": 42.0}}

    def test_link_pivot_spans_kinds(self):
        model = make_record("a", ordering="O0")
        model["result"]["per_link"] = {"R0.EAST": 10, "R1.WEST": 5}
        synth = make_synthetic_record(per_link={"R0.EAST": 7})
        series = link_pivot([model, synth])
        # An accelerator 4x4-MC2 mesh and a synthetic 4x4 mesh are
        # different contexts, so their links keep separate rows.
        assert series["4x4 MC2 R0.EAST"] == {"O0": 10.0}
        assert series["4x4 R0.EAST"] == {"uniform": 7.0}
        assert series["4x4 MC2 R1.WEST"] == {"O0": 5.0}

    def test_link_pivot_single_context_stays_bare(self):
        model = make_record("a", ordering="O0")
        model["result"]["per_link"] = {"R0.EAST": 10}
        other = make_record("b", ordering="O2")
        other["result"]["per_link"] = {"R0.EAST": 6}
        series = link_pivot([model, other])
        assert series["R0.EAST"] == {"O0": 10.0, "O2": 6.0}

    def test_link_pivot_disambiguates_meshes(self):
        """R0.EAST in a 4x4 is not the same link as in an 8x8."""
        small = make_record("a", ordering="O0")
        small["result"]["per_link"] = {"R0.EAST": 10}
        big = make_record("b", width=8, height=8, n_mcs=4, ordering="O0")
        big["result"]["per_link"] = {"R0.EAST": 99}
        series = link_pivot([small, big])
        assert series["4x4 MC2 R0.EAST"] == {"O0": 10.0}
        assert series["8x8 MC4 R0.EAST"] == {"O0": 99.0}

    def test_link_pivot_disambiguates_synthetic_payloads(self):
        a = make_synthetic_record("a", per_link={"R0.EAST": 50})
        b = make_synthetic_record("b", payload="zero",
                                  per_link={"R0.EAST": 0})
        series = link_pivot([a, b])
        assert series["4x4 random R0.EAST"] == {"uniform": 50.0}
        assert series["4x4 zero R0.EAST"] == {"uniform": 0.0}

    def test_campaign_report_mixed_kinds(self):
        text = campaign_report(GRID + [make_synthetic_record()])
        assert "Absolute BTs (fixed8)" in text
        assert "Synthetic traffic BTs" in text
        assert "Synthetic mean packet latency" in text

    def test_campaign_report_rejects_unknown_pivot(self):
        with pytest.raises(ValueError, match="unknown pivot"):
            campaign_report(GRID, "galaxy")

    def test_campaign_report_layer_without_data(self):
        assert "no per-layer data" in campaign_report(GRID, "layer")

    def test_synthetic_inapplicable_pivots_are_explicit(self):
        records = [make_synthetic_record()]
        assert "no per-layer data" in campaign_report(records, "layer")
        assert "no model pivot" in campaign_report(records, "model")

    def test_old_records_default_to_model_kind(self):
        """Pre-registry stores (no "kind" key) still report fine."""
        record = dict(make_record())
        record.pop("kind", None)
        assert "Absolute BTs (fixed8)" in campaign_report([record])

    def test_payload_axis_gets_its_own_rows(self):
        """A multi-payload sweep must not collapse rows onto each other."""
        records = [
            make_synthetic_record("a", bt=900, payload="random"),
            make_synthetic_record("b", bt=0, payload="zero"),
        ]
        text = campaign_report(records)
        assert "4x4 random" in text
        assert "4x4 zero" in text
        assert "900.00" in text  # the random row survives

    def test_any_varied_synthetic_field_gets_its_own_rows(self):
        """Non-payload axes (n_packets, link_width, ...) fold too."""
        a = make_synthetic_record("a", bt=111)
        b = make_synthetic_record("b", bt=999)
        b["config"]["traffic"]["n_packets"] = 150
        text = campaign_report([a, b])
        assert "n_packets=50" in text
        assert "n_packets=150" in text
        assert "111.00" in text and "999.00" in text

    def test_unvaried_fields_stay_out_of_row_labels(self):
        records = [
            make_synthetic_record("a", pattern="uniform"),
            make_synthetic_record("b", pattern="hotspot"),
        ]
        text = campaign_report(records)
        assert "n_packets" not in text  # constant across the grid
        assert "4x4\n" in text or "4x4 " in text.splitlines()[3]

    def test_mixed_accel_kinds_render_separate_blocks(self):
        """Model and batch records at one config don't overwrite."""
        batch = make_record("bb", bt=7777)
        batch["kind"] = "batch"
        text = campaign_report(GRID + [batch])
        assert "== model jobs ==" in text
        assert "== batch jobs ==" in text
        assert "1000.00" in text  # model O0 cell intact
        assert "7777.00" in text  # batch cell rendered too

    def test_unregistered_kind_falls_back_to_accel_family(self):
        record = make_record("x", bt=123)
        record["kind"] = "somekind-from-the-future"
        assert "123.00" in campaign_report([record])


class TestKindAwareCsv:
    def test_synthetic_rows_flatten_nested_config(self, tmp_path):
        store = ResultStore(tmp_path / "runs.jsonl")
        store.append(make_record("a", bt=123))
        store.append(make_synthetic_record("s", pattern="hotspot", bt=9))
        out = tmp_path / "out.csv"
        assert store.to_csv(out) == 2
        with out.open() as fh:
            rows = {r["job_id"]: r for r in csv.DictReader(fh)}
        assert rows["a"]["kind"] == "model"
        assert rows["a"]["ordering"] == "O0"
        assert rows["a"]["pattern"] == ""
        assert rows["s"]["kind"] == "synthetic"
        assert rows["s"]["pattern"] == "hotspot"
        assert rows["s"]["width"] == "4"
        assert rows["s"]["packets_delivered"] == "50"
        assert rows["s"]["total_bit_transitions"] == "9"


class TestEffortBlock:
    def test_old_records_render_no_block(self):
        from repro.experiments.report import campaign_report, effort_block

        records = [make_record(), make_record(job_id="j2", ordering="O2")]
        assert effort_block(records) is None
        assert "Event-core effort" not in campaign_report(records)

    def test_counters_aggregate_across_records(self):
        from repro.experiments.report import effort_block

        a = make_record()
        a["result"]["steps_executed"] = 60
        a["result"]["idle_cycles_skipped"] = 40
        b = make_record(job_id="j2", ordering="O2")
        b["result"]["steps_executed"] = 30
        b["result"]["idle_cycles_skipped"] = 70
        block = effort_block([a, b])
        assert block is not None
        assert "steps executed      : 90" in block
        assert "idle cycles skipped : 110" in block
        assert "simulated cycles    : 200 (55.0% fast-forwarded)" in block

    def test_campaign_report_appends_the_block(self):
        from repro.experiments.report import campaign_report

        record = make_record()
        record["result"]["steps_executed"] = 10
        record["result"]["idle_cycles_skipped"] = 90
        text = campaign_report([record])
        assert "Event-core effort" in text
        assert "90.0% fast-forwarded" in text

    def test_failed_records_are_ignored(self):
        from repro.experiments.report import effort_block

        assert effort_block([make_record(status="error")]) is None


class TestCsvEffortColumns:
    def test_new_columns_present_and_none_safe(self, tmp_path):
        from repro.experiments.store import ResultStore

        new = make_record()
        new["result"]["steps_executed"] = 42
        new["result"]["idle_cycles_skipped"] = 58
        old = make_record(job_id="j2", ordering="O2")  # pre-obs record
        store = ResultStore(tmp_path / "s.jsonl")
        store.extend([new, old])
        assert store.to_csv(tmp_path / "out.csv") == 2
        text = (tmp_path / "out.csv").read_text()
        header, row_new, row_old = text.strip().split("\n")
        assert "steps_executed" in header
        assert "idle_cycles_skipped" in header
        assert row_new.endswith("42,58")
        assert row_old.endswith(",,")


def make_serving_record(job_id="v1", ordering="O0", bg=0.01, bt=2000,
                        core=None, tenants=None, per_link=None):
    tenant_rows = tenants or [
        {"name": "lenet", "workload": "model", "n_nodes": 8,
         "requests_arrived": 2, "requests_admitted": 2,
         "requests_rejected": 0, "requests_completed": 2,
         "packets_injected": 40, "bit_transitions": bt - 500,
         "flit_hops": 100, "mean_request_latency": 150.0,
         "p50_request_latency": 150.0, "p95_request_latency": 160.0,
         "p99_request_latency": 160.0, "mean_packet_latency": 5.0,
         "p50_packet_latency": 5.0, "p95_packet_latency": 9.0,
         "p99_packet_latency": 9.0},
        {"name": "uniform", "workload": "synthetic", "n_nodes": 8,
         "requests_arrived": 2, "requests_admitted": 2,
         "requests_rejected": 0, "requests_completed": 2,
         "packets_injected": 16, "bit_transitions": 500,
         "flit_hops": 40, "mean_request_latency": 20.0,
         "p50_request_latency": 20.0, "p95_request_latency": 25.0,
         "p99_request_latency": 25.0, "mean_packet_latency": 6.0,
         "p50_packet_latency": 6.0, "p95_packet_latency": 11.0,
         "p99_packet_latency": 11.0},
    ]
    noc = {"width": 4, "height": 4, "link_width": 128}
    if core is not None:
        noc["core"] = core
    return {
        "job_id": job_id,
        "campaign": "t",
        "kind": "serving",
        "model": None,
        "cached": False,
        "config": {
            "serving": {
                "tenants": [{"name": t["name"]} for t in tenant_rows],
                "ordering": ordering,
                "background_rate": bg,
                "seed": 7,
            },
            "noc": noc,
        },
        "status": "ok",
        "result": {
            "total_bit_transitions": bt,
            "total_cycles": 400,
            "flit_hops": 140,
            "packets_injected": 56,
            "packets_delivered": 56,
            "flits_injected": 224,
            "mean_packet_latency": 5.5,
            "p50_packet_latency": 5.0,
            "p95_packet_latency": 10.0,
            "p99_packet_latency": 12.0,
            "requests_arrived": 4,
            "requests_admitted": 4,
            "requests_rejected": 0,
            "requests_completed": 4,
            "tenants": tenant_rows,
            "per_link": per_link or {"R0.EAST": bt},
        },
        "error": None,
    }


class TestServingPivots:
    def records(self):
        return [
            make_serving_record("a", ordering="O0", bt=2000),
            make_serving_record("b", ordering="O2", bt=1200),
        ]

    def test_default_pivot_grids(self):
        text = campaign_report(self.records())
        assert "Serving fleet BTs" in text
        assert "Serving BT reductions vs O0, %" in text
        assert "Serving p99 packet latency (cycles)" in text
        assert "O2" in text

    def test_reduction_value(self):
        from repro.experiments.report import _serving_blocks

        text = "\n".join(_serving_blocks(self.records(), "mesh"))
        assert "40.00" in text  # (2000 - 1200) / 2000

    def test_tenant_pivot(self):
        text = campaign_report(self.records(), pivot_name="tenant")
        assert "Per-tenant serving stats" in text
        assert "Per-tenant BTs" in text
        assert "Per-tenant BT reductions vs O0, %" in text
        assert "lenet" in text and "uniform" in text
        assert "p99 req" in text

    def test_link_pivot(self):
        text = campaign_report(self.records(), pivot_name="link")
        assert "Serving per-link BTs" in text
        assert "R0.EAST" in text

    def test_model_and_layer_pivots_are_explicit(self):
        text = campaign_report(self.records(), pivot_name="model")
        assert "no model pivot" in text
        text = campaign_report(self.records(), pivot_name="layer")
        assert "no per-layer data" in text

    def test_varied_rate_gets_own_rows(self):
        records = self.records() + [
            make_serving_record("c", ordering="O0", bg=0.08, bt=3000),
            make_serving_record("d", ordering="O2", bg=0.08, bt=2600),
        ]
        text = campaign_report(records)
        assert "background_rate=0.01" in text
        assert "background_rate=0.08" in text

    def test_core_columns_split(self):
        records = [
            make_serving_record("a", ordering="O0", core="event"),
            make_serving_record("b", ordering="O0", core="stepped"),
        ]
        text = campaign_report(records)
        assert "O0@event" in text
        assert "O0@stepped" in text

    def test_tenant_pivot_on_model_records_is_explicit(self):
        text = campaign_report([make_record()], pivot_name="tenant")
        assert "no tenant pivot" in text

    def test_synthetic_tenant_pivot_is_explicit(self):
        text = campaign_report(
            [make_synthetic_record()], pivot_name="tenant"
        )
        assert "tenant" in text
