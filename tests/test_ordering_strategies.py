"""Tests for repro.ordering.strategies."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bits.popcount import popcount
from repro.ordering.strategies import (
    FillOrder,
    OrderingMethod,
    apply_method,
    deal_into_rows,
    index_bits_required,
    order_affiliated,
    order_baseline,
    order_separated,
    sort_by_popcount,
    undeal_rows,
)

words8 = st.lists(
    st.integers(min_value=0, max_value=255), min_size=1, max_size=40
)


class TestSortByPopcount:
    def test_descending(self):
        values = [0x0F, 0xFF, 0x01, 0x00]
        ordered, perm = sort_by_popcount(values)
        counts = [popcount(v) for v in ordered]
        assert counts == sorted(counts, reverse=True)

    def test_perm_is_correct(self):
        values = [3, 255, 0]
        ordered, perm = sort_by_popcount(values)
        assert ordered == [values[i] for i in perm]

    def test_stable_on_ties(self):
        # Equal counts keep arrival order.
        values = [0b0011, 0b0101, 0b1100]
        ordered, perm = sort_by_popcount(values)
        assert perm == [0, 1, 2]

    def test_ascending_option(self):
        values = [0xFF, 0x00, 0x0F]
        ordered, _ = sort_by_popcount(values, descending=False)
        counts = [popcount(v) for v in ordered]
        assert counts == sorted(counts)

    @given(words8)
    def test_multiset_preserved(self, values):
        ordered, _ = sort_by_popcount(values)
        assert sorted(ordered) == sorted(values)


class TestOrderingMethods:
    def test_method_from_name(self):
        assert OrderingMethod.from_name("O1") is OrderingMethod.AFFILIATED
        assert OrderingMethod.from_name("separated") is OrderingMethod.SEPARATED
        with pytest.raises(ValueError):
            OrderingMethod.from_name("O9")

    def test_baseline_is_identity(self):
        inputs, weights = [1, 2, 3], [7, 0, 255]
        result = order_baseline(inputs, weights)
        assert list(result.inputs) == inputs
        assert list(result.weights) == weights
        assert result.paired

    def test_affiliated_keeps_pairing(self):
        inputs = [10, 20, 30, 40]
        weights = [0x01, 0xFF, 0x00, 0x0F]
        result = order_affiliated(inputs, weights)
        original = dict(zip(weights, inputs))
        for inp, w in zip(result.inputs, result.weights):
            assert original[w] == inp
        assert result.paired

    def test_affiliated_weights_descending(self):
        weights = [0x01, 0xFF, 0x00, 0x0F]
        result = order_affiliated([0] * 4, weights)
        counts = [popcount(w) for w in result.weights]
        assert counts == sorted(counts, reverse=True)

    def test_separated_sorts_both(self):
        inputs = [0x00, 0xFF, 0x03]
        weights = [0x0F, 0x00, 0xFF]
        result = order_separated(inputs, weights)
        in_counts = [popcount(v) for v in result.inputs]
        w_counts = [popcount(v) for v in result.weights]
        assert in_counts == sorted(in_counts, reverse=True)
        assert w_counts == sorted(w_counts, reverse=True)
        assert not result.paired

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            order_affiliated([1], [1, 2])

    @given(words8)
    def test_recover_pairs_all_methods(self, weights):
        inputs = list(reversed(weights))
        for method in OrderingMethod:
            result = apply_method(method, inputs, weights)
            recovered = result.recover_pairs()
            assert recovered == list(zip(inputs, weights))


class TestDealing:
    def test_deal_columns(self):
        rows = deal_into_rows([1, 2, 3, 4, 5, 6], 3)
        assert rows == [[1, 4], [2, 5], [3, 6]]

    def test_deal_uneven(self):
        rows = deal_into_rows([1, 2, 3, 4, 5], 3)
        assert rows == [[1, 4], [2, 5], [3]]

    def test_row_major(self):
        rows = deal_into_rows([1, 2, 3, 4, 5], 3, FillOrder.ROW_MAJOR)
        assert rows == [[1, 2], [3, 4], [5]]

    def test_rejects_nonpositive_rows(self):
        with pytest.raises(ValueError):
            deal_into_rows([1], 0)

    @given(
        st.lists(st.integers(min_value=0, max_value=255), max_size=40),
        st.integers(min_value=1, max_value=6),
    )
    def test_undeal_inverts_deal(self, values, n_rows):
        for fill in FillOrder:
            rows = deal_into_rows(values, n_rows, fill)
            assert undeal_rows(rows, fill) == values

    def test_deal_adjacent_ranks_in_lanes(self):
        # Column-major deal: consecutive rows hold rank-adjacent values
        # in every lane (the proof's interleaving generalised).
        values = list(range(100, 88, -1))  # descending
        rows = deal_into_rows(values, 4)
        for lane in range(3):
            column = [rows[r][lane] for r in range(4)]
            assert column == sorted(column, reverse=True)
            assert column[0] - column[-1] == 3


class TestIndexBits:
    def test_single_value(self):
        assert index_bits_required(1) == 0

    def test_power_of_two(self):
        assert index_bits_required(16) == 4

    def test_non_power(self):
        assert index_bits_required(25) == 5

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            index_bits_required(0)
