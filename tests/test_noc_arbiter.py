"""Tests for repro.noc.arbiter."""

from __future__ import annotations

import pytest

from repro.noc.arbiter import RoundRobinArbiter


class TestRoundRobinArbiter:
    def test_single_requester(self):
        arb = RoundRobinArbiter(4)
        assert arb.pick([False, True, False, False]) == 1

    def test_no_requests(self):
        arb = RoundRobinArbiter(4)
        assert arb.pick([False] * 4) is None

    def test_rotates_after_win(self):
        arb = RoundRobinArbiter(3)
        all_on = [True, True, True]
        winners = [arb.pick(all_on) for _ in range(6)]
        assert winners == [0, 1, 2, 0, 1, 2]

    def test_starvation_freedom(self):
        # Requester 2 must win within n rounds even with competition.
        arb = RoundRobinArbiter(4)
        wins = set()
        for _ in range(4):
            winner = arb.pick([True, True, True, True])
            wins.add(winner)
        assert wins == {0, 1, 2, 3}

    def test_priority_follows_last_winner(self):
        arb = RoundRobinArbiter(4)
        assert arb.pick([True, False, False, True]) == 0
        # After 0 wins, 3 has priority over 0.
        assert arb.pick([True, False, False, True]) == 3

    def test_wrong_length_rejected(self):
        arb = RoundRobinArbiter(3)
        with pytest.raises(ValueError):
            arb.pick([True])

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(0)


class TestPickIndices:
    """pick_indices must be state-equivalent to flag-vector pick."""

    def test_single_index(self):
        arb = RoundRobinArbiter(5)
        assert arb.pick_indices([3]) == 3
        # State advanced exactly as pick() would have: priority now
        # rotates from requester 4, so 0 beats 1.
        assert arb.pick([True, True, False, False, False]) == 0

    def test_empty_returns_none(self):
        arb = RoundRobinArbiter(4)
        assert arb.pick_indices([]) is None

    def test_mirrors_flag_pick_over_random_sequences(self):
        import random

        rng = random.Random(17)
        n = 10
        flag_arb = RoundRobinArbiter(n)
        idx_arb = RoundRobinArbiter(n)
        for _ in range(300):
            asserted = [i for i in range(n) if rng.random() < 0.4]
            flags = [i in asserted for i in range(n)]
            expected = flag_arb.pick(flags)
            got = idx_arb.pick_indices(asserted)
            assert got == expected
            assert idx_arb._last_winner == flag_arb._last_winner
