"""Tests for repro.dnn.layers, including numerical gradient checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dnn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    SoftmaxCrossEntropy,
    Tanh,
    col2im,
    im2col,
)


def numerical_grad(fn, x, eps=1e-6):
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        plus = fn()
        flat[i] = old - eps
        minus = fn()
        flat[i] = old
        gflat[i] = (plus - minus) / (2 * eps)
    return grad


def check_input_gradient(layer, x, tol=1e-6):
    """Backward grad wrt input must match numerical differentiation."""
    out = layer.forward(x)
    upstream = np.random.default_rng(0).normal(size=out.shape)

    def loss():
        return float((layer.forward(x) * upstream).sum())

    analytic = layer.backward(upstream)
    numeric = numerical_grad(loss, x)
    np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=tol)


def check_param_gradient(layer, x, tol=1e-6):
    out = layer.forward(x)
    upstream = np.random.default_rng(1).normal(size=out.shape)
    for p in layer.parameters():
        p.zero_grad()
    layer.forward(x)
    layer.backward(upstream)
    for p in layer.parameters():
        def loss():
            return float((layer.forward(x) * upstream).sum())

        numeric = numerical_grad(loss, p.value)
        np.testing.assert_allclose(p.grad, numeric, rtol=1e-4, atol=tol)


class TestIm2Col:
    def test_shape(self):
        x = np.arange(2 * 3 * 8 * 8, dtype=np.float64).reshape(2, 3, 8, 8)
        cols = im2col(x, 3, 3, 1, 0)
        assert cols.shape == (2, 27, 36)

    def test_identity_kernel(self):
        x = np.random.default_rng(0).normal(size=(1, 1, 4, 4))
        cols = im2col(x, 1, 1, 1, 0)
        np.testing.assert_array_equal(cols[0, 0], x.reshape(-1))

    def test_kernel_too_large(self):
        x = np.zeros((1, 1, 2, 2))
        with pytest.raises(ValueError):
            im2col(x, 5, 5, 1, 0)

    def test_col2im_adjoint(self):
        # <im2col(x), y> == <x, col2im(y)> — the adjoint property that
        # makes the conv backward pass correct.
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 3, 6, 6))
        cols = im2col(x, 3, 3, 1, 1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, 3, 3, 1, 1)).sum())
        assert lhs == pytest.approx(rhs)


class TestConv2d:
    def test_output_shape(self):
        conv = Conv2d(3, 8, 5, rng=np.random.default_rng(0))
        out = conv.forward(np.zeros((2, 3, 32, 32)))
        assert out.shape == (2, 8, 28, 28)

    def test_padding_preserves_size(self):
        conv = Conv2d(1, 4, 3, padding=1, rng=np.random.default_rng(0))
        out = conv.forward(np.zeros((1, 1, 16, 16)))
        assert out.shape == (1, 4, 16, 16)

    def test_manual_convolution(self):
        conv = Conv2d(1, 1, 2, rng=np.random.default_rng(0))
        conv.weight.value[...] = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        conv.bias.value[...] = 0.5
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        out = conv.forward(x)
        assert out[0, 0, 0, 0] == pytest.approx(1 + 4 + 9 + 16 + 0.5)

    def test_input_gradient(self):
        conv = Conv2d(2, 3, 3, rng=np.random.default_rng(0))
        x = np.random.default_rng(2).normal(size=(2, 2, 6, 6))
        check_input_gradient(conv, x)

    def test_param_gradient(self):
        conv = Conv2d(1, 2, 3, rng=np.random.default_rng(0))
        x = np.random.default_rng(2).normal(size=(1, 1, 5, 5))
        check_param_gradient(conv, x)


class TestLinear:
    def test_output_shape(self):
        fc = Linear(10, 4, rng=np.random.default_rng(0))
        assert fc.forward(np.zeros((3, 10))).shape == (3, 4)

    def test_wrong_input(self):
        fc = Linear(10, 4, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            fc.forward(np.zeros((3, 7)))

    def test_input_gradient(self):
        fc = Linear(6, 3, rng=np.random.default_rng(0))
        x = np.random.default_rng(2).normal(size=(4, 6))
        check_input_gradient(fc, x)

    def test_param_gradient(self):
        fc = Linear(5, 2, rng=np.random.default_rng(0))
        x = np.random.default_rng(2).normal(size=(3, 5))
        check_param_gradient(fc, x)


class TestPooling:
    def test_maxpool_values(self):
        pool = MaxPool2d(2)
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        assert pool.forward(x)[0, 0, 0, 0] == 4.0

    def test_maxpool_indivisible(self):
        with pytest.raises(ValueError):
            MaxPool2d(2).forward(np.zeros((1, 1, 5, 4)))

    def test_maxpool_gradient(self):
        pool = MaxPool2d(2)
        x = np.random.default_rng(2).normal(size=(2, 3, 6, 6))
        check_input_gradient(pool, x)

    def test_maxpool_tie_routes_once(self):
        pool = MaxPool2d(2)
        x = np.ones((1, 1, 2, 2))
        pool.forward(x)
        grad = pool.backward(np.array([[[[1.0]]]]))
        assert grad.sum() == pytest.approx(1.0)

    def test_avgpool_values(self):
        pool = AvgPool2d(2)
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        assert pool.forward(x)[0, 0, 0, 0] == pytest.approx(2.5)

    def test_avgpool_gradient(self):
        pool = AvgPool2d(2)
        x = np.random.default_rng(2).normal(size=(2, 2, 4, 4))
        check_input_gradient(pool, x)


class TestActivations:
    def test_relu_forward(self):
        relu = ReLU()
        out = relu.forward(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_array_equal(out, [0.0, 0.0, 2.0])

    def test_relu_gradient(self):
        relu = ReLU()
        x = np.random.default_rng(2).normal(size=(3, 4)) + 0.1
        check_input_gradient(relu, x)

    def test_leaky_relu_slope(self):
        act = LeakyReLU(0.1)
        out = act.forward(np.array([-10.0, 10.0]))
        np.testing.assert_allclose(out, [-1.0, 10.0])

    def test_leaky_relu_gradient(self):
        act = LeakyReLU(0.1)
        x = np.random.default_rng(2).normal(size=(3, 4)) + 0.1
        check_input_gradient(act, x)

    def test_tanh_gradient(self):
        act = Tanh()
        x = np.random.default_rng(2).normal(size=(3, 4))
        check_input_gradient(act, x)


class TestBatchNorm:
    def test_normalises_in_training(self):
        bn = BatchNorm2d(3)
        x = np.random.default_rng(2).normal(3.0, 2.0, size=(8, 3, 4, 4))
        out = bn.forward(x)
        assert abs(out.mean()) < 1e-7
        assert abs(out.var() - 1.0) < 0.01

    def test_eval_uses_running_stats(self):
        bn = BatchNorm2d(2)
        x = np.random.default_rng(2).normal(1.0, 2.0, size=(16, 2, 4, 4))
        for _ in range(50):
            bn.forward(x)
        bn.eval()
        out = bn.forward(x)
        assert abs(out.mean()) < 0.2

    def test_input_gradient_training(self):
        bn = BatchNorm2d(2)
        x = np.random.default_rng(2).normal(size=(4, 2, 3, 3))
        check_input_gradient(bn, x, tol=1e-5)

    def test_param_gradient(self):
        bn = BatchNorm2d(2)
        x = np.random.default_rng(2).normal(size=(4, 2, 3, 3))
        check_param_gradient(bn, x, tol=1e-5)

    def test_wrong_channels(self):
        with pytest.raises(ValueError):
            BatchNorm2d(3).forward(np.zeros((1, 2, 4, 4)))


class TestSequentialAndLoss:
    def test_flatten_round_trip(self):
        flat = Flatten()
        x = np.random.default_rng(0).normal(size=(2, 3, 4, 4))
        out = flat.forward(x)
        assert out.shape == (2, 48)
        assert flat.backward(out).shape == x.shape

    def test_sequential_forward_backward(self):
        rng = np.random.default_rng(0)
        model = Sequential(
            [Linear(8, 6, rng=rng), ReLU(), Linear(6, 3, rng=rng)]
        )
        x = np.random.default_rng(2).normal(size=(5, 8))
        out = model.forward(x)
        assert out.shape == (5, 3)
        grad = model.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_zero_grad(self):
        rng = np.random.default_rng(0)
        model = Sequential([Linear(4, 2, rng=rng)])
        x = np.ones((1, 4))
        model.backward_ready = model.forward(x)
        model.backward(np.ones((1, 2)))
        model.zero_grad()
        for p in model.parameters():
            assert (p.grad == 0).all()

    def test_softmax_ce_uniform(self):
        loss_fn = SoftmaxCrossEntropy()
        logits = np.zeros((4, 10))
        labels = np.array([0, 3, 5, 9])
        loss = loss_fn.forward(logits, labels)
        assert loss == pytest.approx(np.log(10))

    def test_softmax_ce_gradient(self):
        loss_fn = SoftmaxCrossEntropy()
        rng = np.random.default_rng(4)
        logits = rng.normal(size=(3, 5))
        labels = np.array([1, 0, 4])

        def loss():
            return loss_fn.forward(logits, labels)

        loss()
        analytic = loss_fn.backward()
        numeric = numerical_grad(loss, logits)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-5, atol=1e-7)

    def test_perfect_prediction_low_loss(self):
        loss_fn = SoftmaxCrossEntropy()
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        labels = np.array([0, 1])
        assert loss_fn.forward(logits, labels) < 1e-6
