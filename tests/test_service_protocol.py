"""Length-prefixed framing: round-trips, clean close vs torn frame.

The load-bearing distinction under test: EOF at a frame boundary is
None (a worker going away), EOF anywhere inside a frame is a
ProtocolError (a peer dying mid-write) — and ProtocolError is a
ConnectionError so the transient-error triage treats it like any
other network failure.
"""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.experiments.faults import classify_error
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    FrameChannel,
    ProtocolError,
    encode_frame,
    recv_frame,
    send_frame,
    torn_frame_bytes,
)


@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestFraming:
    def test_round_trip(self, pair):
        a, b = pair
        message = {"type": "hello", "worker": "w1", "n": 3}
        send_frame(a, message)
        assert recv_frame(b) == message

    def test_multiple_frames_preserve_boundaries(self, pair):
        a, b = pair
        send_frame(a, {"i": 1})
        send_frame(a, {"i": 2})
        assert recv_frame(b) == {"i": 1}
        assert recv_frame(b) == {"i": 2}

    def test_empty_object(self, pair):
        a, b = pair
        send_frame(a, {})
        assert recv_frame(b) == {}

    def test_clean_close_is_none(self, pair):
        a, b = pair
        a.close()
        assert recv_frame(b) is None

    def test_close_after_whole_frame_is_clean(self, pair):
        a, b = pair
        send_frame(a, {"last": True})
        a.close()
        assert recv_frame(b) == {"last": True}
        assert recv_frame(b) is None

    def test_torn_header_raises(self, pair):
        a, b = pair
        a.sendall(b"\x00\x00")  # half a length header
        a.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            recv_frame(b)

    def test_torn_body_raises(self, pair):
        a, b = pair
        frame = encode_frame({"type": "result", "record": {"x": 1}})
        a.sendall(frame[:-3])
        a.close()
        with pytest.raises(ProtocolError):
            recv_frame(b)

    def test_header_without_body_raises(self, pair):
        a, b = pair
        a.sendall(struct.pack(">I", 10))
        a.close()
        with pytest.raises(ProtocolError, match="between header and body"):
            recv_frame(b)

    def test_oversize_header_rejected(self, pair):
        a, b = pair
        a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(ProtocolError, match="cap"):
            recv_frame(b)

    def test_non_json_body_rejected(self, pair):
        a, b = pair
        a.sendall(struct.pack(">I", 4) + b"{{{{")
        with pytest.raises(ProtocolError, match="not valid JSON"):
            recv_frame(b)

    def test_non_object_body_rejected(self, pair):
        a, b = pair
        body = b"[1, 2]"
        a.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError, match="JSON object"):
            recv_frame(b)

    def test_encode_rejects_non_dict(self):
        with pytest.raises(ProtocolError, match="must be dicts"):
            encode_frame([1, 2])  # type: ignore[arg-type]

    def test_protocol_error_is_transient_connection_error(self):
        assert issubclass(ProtocolError, ConnectionError)
        assert (
            classify_error("ProtocolError: torn") == "transient"
        )


class TestTornFrameBytes:
    def test_always_shorter_than_frame(self):
        message = {"type": "result", "record": {"v": list(range(50))}}
        whole = encode_frame(message)
        for fraction in (0.0, 0.5, 0.99):
            torn = torn_frame_bytes(message, fraction)
            assert len(torn) < len(whole)
            assert whole.startswith(torn)

    def test_minimal_message_still_torn(self):
        # Even a tiny body must lose at least one byte.
        torn = torn_frame_bytes({})
        assert len(torn) < len(encode_frame({}))

    def test_receiver_fails_structured(self, pair):
        a, b = pair
        a.sendall(torn_frame_bytes({"type": "result", "record": {}}))
        a.close()
        with pytest.raises(ProtocolError):
            recv_frame(b)

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            torn_frame_bytes({}, fraction=1.0)


class TestFrameChannel:
    def test_request_response(self, pair):
        a, b = pair

        def echo():
            message = recv_frame(b)
            send_frame(b, {"echo": message})

        server = threading.Thread(target=echo)
        server.start()
        channel = FrameChannel(a)
        reply = channel.request({"type": "ping"}, timeout=5.0)
        server.join()
        assert reply == {"echo": {"type": "ping"}}

    def test_peer_hangup_mid_exchange_raises(self, pair):
        a, b = pair
        b.close()  # server gone before replying
        channel = FrameChannel(a)
        with pytest.raises(OSError):
            channel.request({"type": "claim"}, timeout=1.0)

    def test_concurrent_requests_never_interleave(self, pair):
        # Two threads share one channel (a worker's main loop and its
        # heartbeat thread); each must receive the reply to *its own*
        # request.
        a, b = pair

        def echo_server():
            while True:
                message = recv_frame(b)
                if message is None:
                    return
                send_frame(b, {"echo": message["n"]})

        server = threading.Thread(target=echo_server, daemon=True)
        server.start()
        channel = FrameChannel(a)
        mismatches = []

        def client(n):
            for _ in range(20):
                reply = channel.request({"n": n}, timeout=5.0)
                if reply["echo"] != n:
                    mismatches.append((n, reply))

        threads = [
            threading.Thread(target=client, args=(n,)) for n in (1, 2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        channel.close()
        server.join(timeout=5.0)
        assert mismatches == []
