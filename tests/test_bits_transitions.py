"""Tests for repro.bits.transitions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bits.popcount import popcount
from repro.bits.transitions import (
    per_bit_transitions,
    stream_transitions,
    transition_matrix,
    transitions_between,
)

payload = st.integers(min_value=0, max_value=2**64 - 1)


class TestTransitionsBetween:
    def test_identical_payloads(self):
        assert transitions_between(0xDEADBEEF, 0xDEADBEEF) == 0

    def test_complement(self):
        assert transitions_between(0x00, 0xFF) == 8

    def test_single_bit(self):
        assert transitions_between(0b1000, 0b0000) == 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            transitions_between(-1, 0)

    @given(payload, payload)
    def test_symmetry(self, a, b):
        assert transitions_between(a, b) == transitions_between(b, a)

    @given(payload, payload, payload)
    def test_triangle_inequality(self, a, b, c):
        # Hamming distance is a metric.
        assert transitions_between(a, c) <= (
            transitions_between(a, b) + transitions_between(b, c)
        )


class TestStreamTransitions:
    def test_empty(self):
        assert stream_transitions([]) == 0

    def test_single_flit_free(self):
        # First flit establishes link state without transitions.
        assert stream_transitions([0xFFFF]) == 0

    def test_known_sequence(self):
        assert stream_transitions([0b00, 0b11, 0b01]) == 3

    @given(st.lists(payload, min_size=2, max_size=20))
    def test_matches_pairwise_sum(self, payloads):
        expected = sum(
            popcount(a ^ b) for a, b in zip(payloads, payloads[1:])
        )
        assert stream_transitions(payloads) == expected


class TestTransitionMatrix:
    def test_matches_scalar_counts(self, rng):
        words = rng.integers(0, 2**32, size=(10, 4)).astype(np.uint32)
        bts = transition_matrix(words)
        for i in range(9):
            expected = sum(
                popcount(int(a) ^ int(b))
                for a, b in zip(words[i], words[i + 1])
            )
            assert bts[i] == expected

    def test_single_row(self):
        words = np.zeros((1, 4), dtype=np.uint8)
        assert transition_matrix(words).size == 0

    def test_rejects_signed(self):
        with pytest.raises(ValueError):
            transition_matrix(np.zeros((2, 2), dtype=np.int32))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            transition_matrix(np.zeros(4, dtype=np.uint8))


class TestPerBitTransitions:
    def test_constant_stream_never_flips(self):
        words = np.full(50, 0xAB, dtype=np.uint8)
        np.testing.assert_array_equal(per_bit_transitions(words, 8), 0.0)

    def test_alternating_lsb(self):
        words = np.array([0, 1] * 25, dtype=np.uint8)
        probs = per_bit_transitions(words, 8)
        assert probs[-1] == 1.0  # LSB flips every step (MSB-first order)
        np.testing.assert_array_equal(probs[:-1], 0.0)

    def test_short_stream(self):
        assert per_bit_transitions(np.array([1], dtype=np.uint8), 8).sum() == 0

    def test_msb_first_ordering(self):
        # Only the MSB differs between the two words.
        words = np.array([0x80, 0x00], dtype=np.uint8)
        probs = per_bit_transitions(words, 8)
        assert probs[0] == 1.0
        assert probs[1:].sum() == 0.0

    def test_sums_to_mean_bt(self, rng):
        words = rng.integers(0, 2**8, size=200).astype(np.uint8)
        probs = per_bit_transitions(words, 8)
        mean_bt = np.mean(
            [popcount(int(a) ^ int(b)) for a, b in zip(words, words[1:])]
        )
        assert probs.sum() == pytest.approx(mean_bt)


class TestPerBitTransitionsVectorized:
    """The unpackbits-based pass must be bit-exact with the old loop."""

    @staticmethod
    def _reference_loop(words: np.ndarray, width: int) -> np.ndarray:
        # The pre-vectorization per-position implementation, retained
        # verbatim as the regression oracle.
        arr = np.asarray(words).reshape(-1)
        if arr.size < 2:
            return np.zeros(width, dtype=np.float64)
        xored = arr[:-1] ^ arr[1:]
        probs = np.empty(width, dtype=np.float64)
        for pos in range(width):
            bit = (
                xored >> np.asarray(width - 1 - pos, dtype=arr.dtype)
            ) & 1
            probs[pos] = float(bit.mean())
        return probs

    @pytest.mark.parametrize(
        "dtype,width",
        [
            (np.uint8, 8),
            (np.uint16, 16),
            (np.uint32, 32),
            (np.uint64, 64),
            (np.uint32, 16),  # width below the storage dtype
            (np.uint16, 9),   # non-power-of-two width
        ],
    )
    def test_matches_reference_loop(self, rng, dtype, width):
        words = rng.integers(
            0, 2**width, size=300, dtype=np.uint64, endpoint=False
        ).astype(dtype)
        np.testing.assert_array_equal(
            per_bit_transitions(words, width),
            self._reference_loop(words, width),
        )

    def test_width_above_dtype_is_zero_padded(self, rng):
        # Bits beyond the storage dtype can never flip; the widened
        # unpack must report exactly zero probability for them.
        words = rng.integers(0, 2**8, size=64).astype(np.uint8)
        probs = per_bit_transitions(words, 12)
        np.testing.assert_array_equal(
            probs[:4], np.zeros(4, dtype=np.float64)
        )
        np.testing.assert_array_equal(
            probs[4:], per_bit_transitions(words, 8)
        )

    def test_width_beyond_64_rejected(self):
        words = np.array([1, 2, 3], dtype=np.uint8)
        with pytest.raises(ValueError, match="64-bit unpack limit"):
            per_bit_transitions(words, 65)
