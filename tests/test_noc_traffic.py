"""Tests for repro.noc.traffic (synthetic patterns)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.noc.network import NoCConfig
from repro.noc.traffic import (
    SyntheticTrafficConfig,
    TrafficPattern,
    _payload_words,
    destination_for,
    generate_traffic,
    poisson_arrivals,
    run_synthetic,
    trace_arrivals,
)

NOC = NoCConfig(width=4, height=4, link_width=64)


class TestDestinations:
    def test_transpose(self):
        rng = np.random.default_rng(0)
        # Node (x=1, y=2) = 9 -> (x=2, y=1) = 6.
        assert destination_for(9, TrafficPattern.TRANSPOSE, 4, 4, rng) == 6

    def test_transpose_requires_square(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            destination_for(0, TrafficPattern.TRANSPOSE, 4, 2, rng)

    def test_bit_complement(self):
        rng = np.random.default_rng(0)
        assert destination_for(0, TrafficPattern.BIT_COMPLEMENT, 4, 4, rng) == 15
        assert destination_for(5, TrafficPattern.BIT_COMPLEMENT, 4, 4, rng) == 10

    def test_hotspot_default_centre(self):
        rng = np.random.default_rng(0)
        dst = destination_for(3, TrafficPattern.HOTSPOT, 4, 4, rng)
        assert dst == 10  # (2, 2) in a 4x4 mesh

    def test_uniform_in_range(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            dst = destination_for(
                0, TrafficPattern.UNIFORM_RANDOM, 4, 4, rng
            )
            assert 0 <= dst < 16


class TestGeneration:
    def test_events_sorted_by_cycle(self):
        config = SyntheticTrafficConfig(n_packets=30, seed=1)
        events = list(generate_traffic(config, NOC))
        cycles = [c for c, _ in events]
        assert cycles == sorted(cycles)
        assert len(events) == 30

    def test_payload_kinds(self):
        for kind in ("random", "zero", "counter"):
            config = SyntheticTrafficConfig(
                n_packets=5, payload=kind, seed=2
            )
            events = list(generate_traffic(config, NOC))
            payloads = [f.payload for _, p in events for f in p.flits]
            if kind == "zero":
                assert all(p == 0 for p in payloads)
            else:
                assert any(p != 0 for p in payloads)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SyntheticTrafficConfig(n_packets=0)
        with pytest.raises(ValueError):
            SyntheticTrafficConfig(payload="prime")


class TestRunSynthetic:
    @pytest.mark.parametrize(
        "pattern",
        [
            TrafficPattern.UNIFORM_RANDOM,
            TrafficPattern.TRANSPOSE,
            TrafficPattern.BIT_COMPLEMENT,
            TrafficPattern.HOTSPOT,
        ],
    )
    def test_all_patterns_deliver(self, pattern):
        config = SyntheticTrafficConfig(
            pattern=pattern, n_packets=40, seed=3
        )
        stats = run_synthetic(config, NOC)
        assert stats.packets_delivered == 40

    def test_zero_payload_zero_bt(self):
        config = SyntheticTrafficConfig(
            n_packets=20, payload="zero", seed=4
        )
        stats = run_synthetic(config, NOC)
        assert stats.total_bit_transitions == 0

    def test_hotspot_slower_than_uniform(self):
        uniform = run_synthetic(
            SyntheticTrafficConfig(
                pattern=TrafficPattern.UNIFORM_RANDOM,
                n_packets=120,
                injection_window=60,
                seed=5,
            ),
            NOC,
        )
        hotspot = run_synthetic(
            SyntheticTrafficConfig(
                pattern=TrafficPattern.HOTSPOT,
                n_packets=120,
                injection_window=60,
                seed=5,
            ),
            NOC,
        )
        # All packets funnel into one ejection port: mean latency and
        # drain time must be strictly worse.
        assert hotspot.mean_latency > uniform.mean_latency
        assert hotspot.cycles > uniform.cycles

    def test_deterministic(self):
        config = SyntheticTrafficConfig(n_packets=25, seed=9)
        a = run_synthetic(config, NOC)
        b = run_synthetic(config, NOC)
        assert a.total_bit_transitions == b.total_bit_transitions
        assert a.cycles == b.cycles


class TestPayloadWords:
    def test_random_exercises_every_bit(self):
        # Regression: drawing from integers(0, 2**63) left bit 63 of
        # every 64-bit chunk (and so the top bit of each chunk of a
        # wide link) permanently zero.
        for link_width in (64, 128):
            rng = np.random.default_rng(0)
            seen = 0
            for i in range(2000):
                seen |= _payload_words("random", link_width, rng, i)
                if seen == (1 << link_width) - 1:
                    break
            assert seen == (1 << link_width) - 1

    def test_counter_packets_collision_free(self):
        # Stride >= flits_per_packet: counter payloads never repeat
        # across packets, even past 16 flits.
        config = SyntheticTrafficConfig(
            n_packets=8, payload="counter", flits_per_packet=20, seed=0
        )
        events = list(generate_traffic(config, NOC))
        payloads = [f.payload for _, p in events for f in p.flits]
        assert len(payloads) == len(set(payloads)) == 8 * 20

    def test_counter_stride_pinned_for_short_packets(self):
        # Golden traffic uses <=16 flits/packet; its counter sequence
        # (stride 16) is pinned so recorded traces stay byte-identical.
        config = SyntheticTrafficConfig(
            n_packets=3, payload="counter", flits_per_packet=4, seed=0
        )
        events = sorted(
            generate_traffic(config, NOC), key=lambda e: e[1].flits[0].payload
        )
        payloads = [
            [f.payload for f in p.flits] for _, p in events
        ]
        assert payloads == [
            [0, 1, 2, 3], [16, 17, 18, 19], [32, 33, 34, 35]
        ]


class TestArrivals:
    def test_poisson_strictly_increasing(self):
        rng = np.random.default_rng(7)
        arrivals = poisson_arrivals(0.5, 200, rng)
        assert len(arrivals) == 200
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))

    def test_poisson_mean_gap_tracks_rate(self):
        rng = np.random.default_rng(8)
        arrivals = poisson_arrivals(0.01, 3000, rng)
        mean_gap = arrivals[-1] / len(arrivals)
        assert 90 < mean_gap < 110

    def test_poisson_deterministic_per_seed(self):
        a = poisson_arrivals(0.2, 50, np.random.default_rng(3))
        b = poisson_arrivals(0.2, 50, np.random.default_rng(3))
        assert a == b

    def test_poisson_degenerate(self):
        rng = np.random.default_rng(0)
        assert poisson_arrivals(0.0, 10, rng) == []
        assert poisson_arrivals(0.5, 0, rng) == []

    def test_trace_cycles_and_clamps(self):
        assert trace_arrivals([3, 0, 5], 5) == [3, 4, 9, 12, 13]
        assert trace_arrivals([], 4) == []
        assert trace_arrivals([2], 0) == []
