"""Tests for repro.noc.traffic (synthetic patterns)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.noc.network import NoCConfig
from repro.noc.traffic import (
    SyntheticTrafficConfig,
    TrafficPattern,
    destination_for,
    generate_traffic,
    run_synthetic,
)

NOC = NoCConfig(width=4, height=4, link_width=64)


class TestDestinations:
    def test_transpose(self):
        rng = np.random.default_rng(0)
        # Node (x=1, y=2) = 9 -> (x=2, y=1) = 6.
        assert destination_for(9, TrafficPattern.TRANSPOSE, 4, 4, rng) == 6

    def test_transpose_requires_square(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            destination_for(0, TrafficPattern.TRANSPOSE, 4, 2, rng)

    def test_bit_complement(self):
        rng = np.random.default_rng(0)
        assert destination_for(0, TrafficPattern.BIT_COMPLEMENT, 4, 4, rng) == 15
        assert destination_for(5, TrafficPattern.BIT_COMPLEMENT, 4, 4, rng) == 10

    def test_hotspot_default_centre(self):
        rng = np.random.default_rng(0)
        dst = destination_for(3, TrafficPattern.HOTSPOT, 4, 4, rng)
        assert dst == 10  # (2, 2) in a 4x4 mesh

    def test_uniform_in_range(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            dst = destination_for(
                0, TrafficPattern.UNIFORM_RANDOM, 4, 4, rng
            )
            assert 0 <= dst < 16


class TestGeneration:
    def test_events_sorted_by_cycle(self):
        config = SyntheticTrafficConfig(n_packets=30, seed=1)
        events = list(generate_traffic(config, NOC))
        cycles = [c for c, _ in events]
        assert cycles == sorted(cycles)
        assert len(events) == 30

    def test_payload_kinds(self):
        for kind in ("random", "zero", "counter"):
            config = SyntheticTrafficConfig(
                n_packets=5, payload=kind, seed=2
            )
            events = list(generate_traffic(config, NOC))
            payloads = [f.payload for _, p in events for f in p.flits]
            if kind == "zero":
                assert all(p == 0 for p in payloads)
            else:
                assert any(p != 0 for p in payloads)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SyntheticTrafficConfig(n_packets=0)
        with pytest.raises(ValueError):
            SyntheticTrafficConfig(payload="prime")


class TestRunSynthetic:
    @pytest.mark.parametrize(
        "pattern",
        [
            TrafficPattern.UNIFORM_RANDOM,
            TrafficPattern.TRANSPOSE,
            TrafficPattern.BIT_COMPLEMENT,
            TrafficPattern.HOTSPOT,
        ],
    )
    def test_all_patterns_deliver(self, pattern):
        config = SyntheticTrafficConfig(
            pattern=pattern, n_packets=40, seed=3
        )
        stats = run_synthetic(config, NOC)
        assert stats.packets_delivered == 40

    def test_zero_payload_zero_bt(self):
        config = SyntheticTrafficConfig(
            n_packets=20, payload="zero", seed=4
        )
        stats = run_synthetic(config, NOC)
        assert stats.total_bit_transitions == 0

    def test_hotspot_slower_than_uniform(self):
        uniform = run_synthetic(
            SyntheticTrafficConfig(
                pattern=TrafficPattern.UNIFORM_RANDOM,
                n_packets=120,
                injection_window=60,
                seed=5,
            ),
            NOC,
        )
        hotspot = run_synthetic(
            SyntheticTrafficConfig(
                pattern=TrafficPattern.HOTSPOT,
                n_packets=120,
                injection_window=60,
                seed=5,
            ),
            NOC,
        )
        # All packets funnel into one ejection port: mean latency and
        # drain time must be strictly worse.
        assert hotspot.mean_latency > uniform.mean_latency
        assert hotspot.cycles > uniform.cycles

    def test_deterministic(self):
        config = SyntheticTrafficConfig(n_packets=25, seed=9)
        a = run_synthetic(config, NOC)
        b = run_synthetic(config, NOC)
        assert a.total_bit_transitions == b.total_bit_transitions
        assert a.cycles == b.cycles
